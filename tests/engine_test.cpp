// Tests for the parallel execution engine (src/engine/): thread pool
// semantics, flat inbox/outbox buffers, and — the load-bearing property —
// that parallel(k) execution is bit-identical to the serial reference
// executor for every Level-0 program in the tree (delivery order, inbox
// contents, ledger totals), with the traffic caps enforced exactly under
// concurrency.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "engine/engine.hpp"
#include "engine/execution_policy.hpp"
#include "engine/inbox.hpp"
#include "engine/records.hpp"
#include "engine/thread_pool.hpp"
#include "graph/generators.hpp"
#include "local/mpc_embedding.hpp"
#include "mpc/broadcast.hpp"
#include "mpc/cluster.hpp"
#include "mpc/primitives.hpp"
#include "mpc/sample_sort.hpp"
#include "util/assert.hpp"
#include "util/hashing.hpp"
#include "util/rng.hpp"

namespace arbor {
namespace {

using engine::ExecutionPolicy;
using mpc::Cluster;
using mpc::ClusterConfig;
using mpc::RoundLedger;
using mpc::Sender;
using mpc::Word;

// ---------------------------------------------------------------- policy

TEST(ExecutionPolicy, SerialDefaults) {
  const ExecutionPolicy p = ExecutionPolicy::serial();
  EXPECT_FALSE(p.is_parallel());
  EXPECT_EQ(p.effective_threads(), 1u);
}

TEST(ExecutionPolicy, ParallelThreads) {
  const ExecutionPolicy p = ExecutionPolicy::parallel(4);
  EXPECT_TRUE(p.is_parallel());
  EXPECT_EQ(p.effective_threads(), 4u);
  // threads == 0 resolves to hardware concurrency, at least one.
  EXPECT_GE(ExecutionPolicy::parallel(0).effective_threads(), 1u);
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  engine::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.run_blocks(100, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesFewerItemsThanWorkers) {
  engine::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.run_blocks(3, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyRounds) {
  engine::ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round)
    pool.run_blocks(17, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin);
    });
  EXPECT_EQ(total.load(), 200u * 17u);
}

TEST(ThreadPool, PropagatesLowestBlockException) {
  engine::ThreadPool pool(4);
  try {
    pool.run_blocks(4, [&](std::size_t begin, std::size_t) {
      throw std::runtime_error("block " + std::to_string(begin));
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "block 0");
  }
}

// ------------------------------------------------------- flat inbox views

TEST(Inbox, FlatAppendAndViews) {
  engine::Inbox inbox;
  inbox.append(std::vector<Word>{1, 2, 3});
  inbox.append(std::vector<Word>{9});
  const engine::InboxView view(inbox);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_FALSE(view.empty());
  EXPECT_EQ(view.total_words(), 4u);
  EXPECT_EQ(view[0].size(), 3u);
  EXPECT_EQ(view[0][1], 2u);
  EXPECT_EQ(view[1][0], 9u);
  const std::vector<Word> materialized = view.front();
  EXPECT_EQ(materialized, (std::vector<Word>{1, 2, 3}));
  std::size_t count = 0, words = 0;
  for (const auto& msg : view) {
    ++count;
    words += msg.size();
  }
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(words, 4u);
  inbox.clear();
  EXPECT_TRUE(engine::InboxView(inbox).empty());
}

TEST(Inbox, NestedViewAdaptsVectors) {
  const std::vector<std::vector<Word>> nested{{4, 5}, {6}};
  const engine::InboxView view(nested);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view.total_words(), 3u);
  EXPECT_EQ(view[0], (std::vector<Word>{4, 5}));
  EXPECT_EQ(view[1][0], 6u);
}

// -------------------------------------------- record slabs & bulk routing

// Count of splitter keys ≤ the record's key — the per-record bucket rule
// (std::upper_bound semantics) the bulk partition must reproduce exactly.
std::size_t bucket_of(std::span<const Word> splitters, std::size_t key_words,
                      const Word* rec) {
  const std::size_t k = splitters.size() / key_words;
  std::size_t b = 0;
  while (b < k && engine::compare_keys(splitters.data() + b * key_words, rec,
                                       key_words) <= 0)
    ++b;
  return b;
}

TEST(Records, WidthOneSortFastPath) {
  util::SplitRng rng(71);
  std::vector<Word> slab;
  for (std::size_t i = 0; i < 1000; ++i) slab.push_back(rng.next_below(50));
  std::vector<Word> expected = slab;
  std::sort(expected.begin(), expected.end());
  engine::stable_sort_records(slab, /*width=*/1, /*key_words=*/1);
  EXPECT_EQ(slab, expected);
}

TEST(Records, PartitionSortedMatchesPerRecordRule) {
  util::SplitRng rng(72);
  constexpr std::size_t kWidth = 2, kKeyWords = 2;
  std::vector<Word> slab;
  for (std::size_t i = 0; i < 500; ++i) {
    slab.push_back(rng.next_below(40));  // heavy duplication
    slab.push_back(rng.next_below(8));
  }
  engine::stable_sort_records(slab, kWidth, kKeyWords);
  std::vector<Word> splitters;
  for (const Word k : {5u, 5u, 17u, 30u}) {  // duplicate splitter included
    splitters.push_back(k);
    splitters.push_back(4);
  }

  const std::vector<std::size_t> bounds = engine::partition_sorted_records(
      slab, kWidth, kKeyWords, splitters);
  ASSERT_EQ(bounds.size(), 6u);  // k+2 fenceposts for k=4 splitters
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), slab.size() / kWidth);
  for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
    EXPECT_LE(bounds[b], bounds[b + 1]);
    for (std::size_t r = bounds[b]; r < bounds[b + 1]; ++r)
      EXPECT_EQ(bucket_of(splitters, kKeyWords, slab.data() + r * kWidth), b)
          << "record " << r;
  }
}

TEST(Records, PartitionAllDuplicatesAndEmptySplitters) {
  constexpr std::size_t kWidth = 2, kKeyWords = 1;
  std::vector<Word> slab;
  for (std::size_t i = 0; i < 64; ++i) {
    slab.push_back(7);  // every key identical
    slab.push_back(i);
  }
  // Splitters below, at, and above the key: bucket 1 (between the two 7s)
  // must come out empty, everything lands in bucket 2 (> the last 7).
  const std::vector<Word> splitters{3, 7, 7};
  const std::vector<std::size_t> bounds = engine::partition_sorted_records(
      slab, kWidth, kKeyWords, splitters);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds[0], 0u);   // bucket 0 (key < 3): empty
  EXPECT_EQ(bounds[1], 0u);   // bucket 1 (3 ≤ key < 7): empty
  EXPECT_EQ(bounds[2], 0u);   // bucket 2: empty — duplicate splitter
  EXPECT_EQ(bounds[3], 0u);   // bucket 3 (key ≥ 7): keys equal a splitter
  EXPECT_EQ(bounds[4], 64u);  // go above it, so everything lands here

  // No splitters at all: the single bucket 0 takes the whole slab.
  const std::vector<std::size_t> none = engine::partition_sorted_records(
      slab, kWidth, kKeyWords, std::span<const Word>{});
  ASSERT_EQ(none.size(), 2u);
  EXPECT_EQ(none[0], 0u);
  EXPECT_EQ(none[1], 64u);
}

// Bulk send_records must enqueue, per destination, exactly the payload the
// per-record route would (width-1 records: the word sort's route shape).
TEST(Records, SendRecordsMatchesPerRecordRouting) {
  util::SplitRng rng(73);
  constexpr std::size_t kMachines = 8;
  std::vector<Word> slab;
  for (std::size_t i = 0; i < 300; ++i) slab.push_back(rng.next_below(100));
  std::sort(slab.begin(), slab.end());
  std::vector<Word> splitters;
  for (std::size_t b = 1; b < kMachines; ++b)
    splitters.push_back(b * 100 / kMachines);

  engine::Outbox bulk_out;
  engine::Sender bulk(0, 4096, kMachines, bulk_out);
  engine::send_records(bulk, std::span<const Word>(slab), 1, 1,
                       std::span<const Word>(splitters),
                       [](std::size_t b) { return b; });

  std::vector<std::vector<Word>> expected(kMachines);
  for (const Word w : slab)
    expected[bucket_of(splitters, 1, &w)].push_back(w);

  std::vector<std::vector<Word>> got(kMachines);
  std::size_t last_dst = 0;
  for (const auto& msg : bulk_out.msgs) {
    EXPECT_GE(msg.dst, last_dst);  // ascending: one span per destination
    last_dst = msg.dst;
    const auto payload = bulk_out.payload(msg);
    got[msg.dst].insert(got[msg.dst].end(), payload.begin(), payload.end());
  }
  EXPECT_EQ(got, expected);
  EXPECT_EQ(bulk.words_sent(), slab.size());
}

// ------------------------------------------------- stable k-way merge

// The contract: merge_sorted_runs == std::stable_sort of the runs'
// concatenation in run order (engine::stable_sort_records is exactly
// that). Every test below compares against this reference.
std::vector<Word> merge_reference(const std::vector<std::vector<Word>>& runs,
                                  std::size_t width, std::size_t key_words) {
  std::vector<Word> all;
  for (const auto& run : runs) all.insert(all.end(), run.begin(), run.end());
  engine::stable_sort_records(all, width, key_words);
  return all;
}

std::vector<Word> merge_runs(const std::vector<std::vector<Word>>& runs,
                             std::size_t width, std::size_t key_words) {
  std::vector<std::span<const Word>> spans(runs.begin(), runs.end());
  std::vector<Word> out;
  engine::merge_sorted_runs(spans, width, key_words, out);
  return out;
}

TEST(RecordMerge, RaggedRunCountsIncludingEmptyRuns) {
  // 0 runs, 1 run, and k runs with empties interleaved all merge clean.
  EXPECT_TRUE(merge_runs({}, 2, 1).empty());
  EXPECT_EQ(merge_runs({{3, 10, 5, 11}}, 2, 1),
            (std::vector<Word>{3, 10, 5, 11}));
  const std::vector<std::vector<Word>> ragged{
      {}, {4, 20}, {}, {1, 30, 4, 31, 9, 32}, {2, 40}, {}};
  EXPECT_EQ(merge_runs(ragged, 2, 1), merge_reference(ragged, 2, 1));
  EXPECT_EQ(merge_runs(ragged, 2, 1),
            (std::vector<Word>{1, 30, 2, 40, 4, 20, 4, 31, 9, 32}));
}

TEST(RecordMerge, DuplicateKeysResolveToEarliestRun) {
  // Three runs of identical keys, payload = run id: stability demands the
  // output interleave run 0's records before run 1's before run 2's at
  // every tied key — exactly the stable sort of the concatenation.
  std::vector<std::vector<Word>> runs(3);
  for (std::size_t r = 0; r < runs.size(); ++r)
    for (const Word key : {5u, 5u, 8u}) {
      runs[r].push_back(key);
      runs[r].push_back(r);
    }
  const std::vector<Word> merged = merge_runs(runs, 2, 1);
  EXPECT_EQ(merged, merge_reference(runs, 2, 1));
  EXPECT_EQ(merged,
            (std::vector<Word>{5, 0, 5, 0, 5, 1, 5, 1, 5, 2, 5, 2,
                               8, 0, 8, 1, 8, 2}));
}

TEST(RecordMerge, WidthOneFastPathMatchesSort) {
  util::SplitRng rng(74);
  std::vector<std::vector<Word>> runs(5);
  for (auto& run : runs) {
    for (std::size_t i = 0; i < 200; ++i) run.push_back(rng.next_below(64));
    std::sort(run.begin(), run.end());
  }
  EXPECT_EQ(merge_runs(runs, 1, 1), merge_reference(runs, 1, 1));
}

// Randomized cross-check of the galloping heap merge against the linear
// reference, on run shapes chosen to exercise the gallop: one dominating
// run with long stretches below every other head, plus short runs, heavy
// key duplication, and a multi-word lexicographic key.
TEST(RecordMerge, GallopMatchesLinearReferenceOnRandomRuns) {
  util::SplitRng rng(75);
  constexpr std::size_t kWidth = 3, kKeyWords = 2;
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t k = 1 + rng.next_below(9);
    std::vector<std::vector<Word>> runs(k);
    Word payload = 0;
    for (std::size_t r = 0; r < k; ++r) {
      // Run 0 is long (gallop batches), later runs progressively shorter
      // (frequent heap churn); some runs roll empty.
      const std::size_t records =
          r == 0 ? 300 : rng.next_below(40 / (r + 1) + 2);
      for (std::size_t i = 0; i < records; ++i) {
        runs[r].push_back(rng.next_below(16));  // heavy duplication
        runs[r].push_back(rng.next_below(4));
        runs[r].push_back(payload++);  // non-key word rides along
      }
      engine::stable_sort_records(runs[r], kWidth, kKeyWords);
    }
    EXPECT_EQ(merge_runs(runs, kWidth, kKeyWords),
              merge_reference(runs, kWidth, kKeyWords))
        << "trial " << trial;
  }
}

TEST(RecordMerge, AppendsToExistingOutputAndMergesInboxes) {
  // merge_sorted_runs APPENDS (the bucket-sort round merges into a result
  // slab that outlives the call); merge_sorted_inbox adapts an inbox's
  // messages as the runs, in delivery order.
  const std::vector<std::vector<Word>> runs{{2, 9}, {1, 7}};
  std::vector<std::span<const Word>> spans(runs.begin(), runs.end());
  std::vector<Word> out{99};
  engine::merge_sorted_runs(spans, 2, 1, out);
  EXPECT_EQ(out, (std::vector<Word>{99, 1, 7, 2, 9}));

  engine::Inbox inbox;
  inbox.append(std::vector<Word>{4, 6, 6, 8});
  inbox.append(std::vector<Word>{5, 5});
  std::vector<Word> merged;
  engine::merge_sorted_inbox(engine::InboxView(inbox), 1, 1, merged);
  EXPECT_EQ(merged, (std::vector<Word>{4, 5, 5, 6, 6, 8}));
}

// -------------------------------------------- delivery order determinism

// The engine must deliver messages in (source asc, send order) for every
// destination — the serial executor's order — regardless of scheduling.
TEST(Engine, DeliveryOrderMatchesSerial) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ClusterConfig cfg{6, 64};
    cfg.execution = ExecutionPolicy::parallel(threads);
    Cluster cluster(cfg, nullptr);
    cluster.run_round([](std::size_t m, const auto&, Sender& send) {
      // Every machine sends two messages to machine 0, tagged by source.
      send.send(0, {m * 10});
      send.send(0, {m * 10 + 1});
    });
    const auto inbox = cluster.inbox(0);
    ASSERT_EQ(inbox.size(), 12u);
    for (std::size_t i = 0; i < 12; ++i)
      EXPECT_EQ(inbox[i][0], (i / 2) * 10 + (i % 2)) << "message " << i;
  }
}

TEST(Engine, PreloadVisibleInFirstRound) {
  ClusterConfig cfg{3, 64};
  cfg.execution = ExecutionPolicy::parallel(2);
  Cluster cluster(cfg, nullptr);
  cluster.preload(1, {7, 8});
  std::vector<Word> seen;
  cluster.run_round([&](std::size_t m, const auto& inbox, Sender&) {
    if (m == 1 && !inbox.empty()) {
      const std::vector<Word> msg = inbox.front();
      seen = msg;
    }
  });
  EXPECT_EQ(seen, (std::vector<Word>{7, 8}));
}

// Checksum of every machine's inbox (message boundaries included).
std::uint64_t inbox_fingerprint(const Cluster& cluster) {
  std::uint64_t h = util::mix64(0xabcdef);
  for (std::size_t m = 0; m < cluster.num_machines(); ++m) {
    for (const auto& msg : cluster.inbox(m)) {
      h = util::hash_combine(h, msg.size());
      for (Word w : msg) h = util::hash_combine(h, w);
    }
    h = util::hash_combine(h, 0x6d61636821ULL);  // machine separator
  }
  return h;
}

// A multi-round routing storm: every machine scatters hashed words, then the
// fingerprints of the full inbox state must agree serial vs parallel(k),
// and so must the ledger (rounds, peak traffic).
TEST(Engine, StormBitIdenticalAcrossExecutors) {
  const std::size_t machines = 32;
  const ClusterConfig base{machines, 4096};
  std::vector<std::uint64_t> fingerprints;
  std::vector<std::size_t> peak_traffic;
  for (const auto& policy :
       {ExecutionPolicy::serial(), ExecutionPolicy::parallel(1),
        ExecutionPolicy::parallel(3), ExecutionPolicy::parallel(8)}) {
    ClusterConfig cfg = base;
    cfg.execution = policy;
    RoundLedger ledger(cfg);
    Cluster cluster(cfg, &ledger);
    for (std::size_t round = 0; round < 5; ++round) {
      cluster.run_round([&](std::size_t m, const auto&, Sender& send) {
        for (std::size_t i = 0; i < 16; ++i) {
          const Word w = util::hash_words(7, round, m, i);
          send.send(w % machines, {w, w ^ m});
        }
      });
    }
    fingerprints.push_back(inbox_fingerprint(cluster));
    peak_traffic.push_back(ledger.peak_round_traffic());
    EXPECT_EQ(ledger.total_rounds(), 5u);
  }
  for (std::size_t i = 1; i < fingerprints.size(); ++i) {
    EXPECT_EQ(fingerprints[i], fingerprints[0]) << "policy " << i;
    EXPECT_EQ(peak_traffic[i], peak_traffic[0]) << "policy " << i;
  }
}

// ---------------------------------- determinism of the Level-0 programs

TEST(Engine, SampleSortIdenticalToSerialAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 2u, 77u}) {
    util::SplitRng rng(seed);
    const std::size_t machines = 8;
    std::vector<std::vector<Word>> input(machines);
    for (auto& slab : input)
      for (int i = 0; i < 32; ++i) slab.push_back(rng.next_below(1u << 20));

    ClusterConfig serial_cfg{machines, 1024};
    RoundLedger serial_ledger(serial_cfg);
    Cluster serial_cluster(serial_cfg, &serial_ledger);
    const auto serial_result = mpc::sample_sort(serial_cluster, input);

    for (const std::size_t threads : {1u, 4u}) {
      ClusterConfig cfg{machines, 1024};
      cfg.execution = ExecutionPolicy::parallel(threads);
      RoundLedger ledger(cfg);
      Cluster cluster(cfg, &ledger);
      const auto result = mpc::sample_sort(cluster, input);
      EXPECT_EQ(result.slabs, serial_result.slabs)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(result.rounds, serial_result.rounds);
      EXPECT_EQ(ledger.total_rounds(), serial_ledger.total_rounds());
      EXPECT_EQ(ledger.peak_round_traffic(),
                serial_ledger.peak_round_traffic());
      EXPECT_EQ(ledger.rounds_by_label(), serial_ledger.rounds_by_label());
    }
  }
}

TEST(Engine, BroadcastIdenticalToSerial) {
  const std::vector<Word> payload{3, 1, 4, 1, 5};
  ClusterConfig serial_cfg{13, 256};
  RoundLedger serial_ledger(serial_cfg);
  Cluster serial_cluster(serial_cfg, &serial_ledger);
  const auto serial_result =
      mpc::broadcast_tree(serial_cluster, 4, payload, 3);

  ClusterConfig cfg{13, 256};
  cfg.execution = ExecutionPolicy::parallel(4);
  RoundLedger ledger(cfg);
  Cluster cluster(cfg, &ledger);
  const auto result = mpc::broadcast_tree(cluster, 4, payload, 3);

  EXPECT_EQ(result.copies, serial_result.copies);
  EXPECT_EQ(result.rounds, serial_result.rounds);
  EXPECT_EQ(ledger.total_rounds(), serial_ledger.total_rounds());
  EXPECT_EQ(ledger.peak_round_traffic(), serial_ledger.peak_round_traffic());
}

TEST(Engine, EmbeddedPeelingIdenticalToSerial) {
  util::SplitRng rng(11);
  const graph::Graph g = graph::gnm(400, 1200, rng);

  Cluster serial_cluster(ClusterConfig{8, 1 << 14}, nullptr);
  const auto serial_result =
      local::embedded_threshold_peeling(g, 6, serial_cluster, 200);

  ClusterConfig cfg{8, 1 << 14};
  cfg.execution = ExecutionPolicy::parallel(4);
  Cluster cluster(cfg, nullptr);
  const auto result = local::embedded_threshold_peeling(g, 6, cluster, 200);

  EXPECT_EQ(result.layer, serial_result.layer);
  EXPECT_EQ(result.num_layers, serial_result.num_layers);
  EXPECT_EQ(result.cluster_rounds, serial_result.cluster_rounds);
  EXPECT_EQ(result.complete, serial_result.complete);
}

// ------------------------------------------------ cap enforcement, parallel

TEST(Engine, SendCapacityEnforcedUnderParallel) {
  ClusterConfig cfg{4, 4};
  cfg.execution = ExecutionPolicy::parallel(4);
  Cluster cluster(cfg, nullptr);
  EXPECT_THROW(
      cluster.run_round([](std::size_t m, const auto&, Sender& send) {
        if (m == 2) send.send(0, {1, 2, 3, 4, 5});  // 5 > 4 words
      }),
      arbor::InvariantError);
}

TEST(Engine, ReceiveCapacityEnforcedOncePerMachineNamingOffender) {
  ClusterConfig cfg{4, 4};
  cfg.execution = ExecutionPolicy::parallel(2);
  Cluster cluster(cfg, nullptr);
  try {
    cluster.run_round([](std::size_t m, const auto&, Sender& send) {
      // Individually within the send cap, but machine 3 receives 3 × 3 = 9.
      if (m != 3) send.send(3, {m, m, m});
    });
    FAIL() << "expected receive-capacity violation";
  } catch (const arbor::InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("machine 3"), std::string::npos) << what;
    EXPECT_NE(what.find("receive capacity"), std::string::npos) << what;
    EXPECT_NE(what.find("9 > 4"), std::string::npos) << what;
  }
}

TEST(Engine, SerialReceiveCapMessageAlsoNamesMachine) {
  Cluster cluster(ClusterConfig{3, 4}, nullptr);
  try {
    cluster.run_round([](std::size_t m, const auto&, Sender& send) {
      if (m != 2) send.send(2, {1, 2, 3});
    });
    FAIL() << "expected receive-capacity violation";
  } catch (const arbor::InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("machine 2"), std::string::npos);
  }
}

TEST(Engine, MessageToNonexistentMachineRejected) {
  ClusterConfig cfg{2, 16};
  cfg.execution = ExecutionPolicy::parallel(2);
  Cluster cluster(cfg, nullptr);
  EXPECT_THROW(
      cluster.run_round([](std::size_t m, const auto&, Sender& send) {
        if (m == 0) send.send(5, {1});
      }),
      arbor::InvariantError);
}

// Outbox/inbox arenas must be reusable: after a violation-free run of many
// rounds the cluster still produces exact results (regression against
// stale offsets from recycled buffers).
TEST(Engine, ArenaReuseKeepsRoundsExact) {
  ClusterConfig cfg{4, 1024};
  cfg.execution = ExecutionPolicy::parallel(2);
  Cluster cluster(cfg, nullptr);
  // Ring of growing-then-shrinking payloads.
  for (std::size_t round = 0; round < 50; ++round) {
    const std::size_t len = 1 + (round * 7) % 23;
    cluster.run_round([&](std::size_t m, const auto& inbox, Sender& send) {
      std::vector<Word> payload(len, round * 100 + m);
      if (round > 0) {
        ARBOR_CHECK(inbox.size() == 1);
        // Previous round's payload came from our left neighbor.
        const std::size_t prev_len = 1 + ((round - 1) * 7) % 23;
        ARBOR_CHECK(inbox.front().size() == prev_len);
        const std::size_t left = (m + 3) % 4;
        ARBOR_CHECK(inbox.front()[0] == (round - 1) * 100 + left);
      }
      send.send((m + 1) % 4, payload);
    });
  }
  EXPECT_EQ(cluster.rounds_executed(), 50u);
}

// A shared Engine executes one round at a time; driving a second cluster
// from inside a step function must fail loudly, not corrupt scratch state.
TEST(Engine, RunRoundIsNotReentrant) {
  ClusterConfig cfg{2, 64};
  cfg.execution = ExecutionPolicy::parallel(1);
  engine::Engine shared(cfg.execution);
  Cluster a(cfg, nullptr, &shared);
  Cluster b(cfg, nullptr, &shared);
  EXPECT_THROW(a.run_round([&](std::size_t, const auto&, Sender&) {
    b.run_round([](std::size_t, const auto&, Sender&) {});
  }),
               arbor::InvariantError);
  // The guard resets: the engine is usable again afterwards.
  b.run_round([](std::size_t m, const auto&, Sender& send) {
    send.send(1 - m, {m});
  });
  EXPECT_EQ(b.inbox(0).front()[0], 1u);
}

// ----------------------------------------- RoundPrograms & the scheduler

// A three-step machine-independent ring program: step k sends (inbox sum +
// m) to the right neighbor. Cross-step data dependence through the inboxes
// makes any delivery/compute reordering visible in the final state.
engine::RoundProgram ring_program(std::size_t machines, std::size_t steps) {
  engine::RoundProgram program;
  for (std::size_t s = 0; s < steps; ++s) {
    program.independent([machines](std::size_t m, const auto& inbox,
                                   Sender& send) {
      Word acc = m;
      for (const auto& msg : inbox)
        for (Word w : msg) acc += w;
      send.send((m + 1) % machines, {acc});
    });
  }
  return program;
}

TEST(Scheduler, AsyncOverlapBitIdenticalToStrict) {
  std::vector<std::uint64_t> fingerprints;
  std::vector<std::size_t> peaks;
  for (const auto& policy :
       {ExecutionPolicy::serial(), ExecutionPolicy::parallel(4).with_async(false),
        ExecutionPolicy::parallel(4).with_async(true),
        ExecutionPolicy::parallel(1).with_async(true)}) {
    ClusterConfig cfg{16, 256};
    cfg.execution = policy;
    RoundLedger ledger(cfg);
    Cluster cluster(cfg, &ledger);
    const auto stats = cluster.run_program(ring_program(16, 6));
    EXPECT_EQ(stats.rounds, 6u);
    EXPECT_EQ(ledger.total_rounds(), 6u);
    fingerprints.push_back(inbox_fingerprint(cluster));
    peaks.push_back(ledger.peak_round_traffic());
  }
  for (std::size_t i = 1; i < fingerprints.size(); ++i) {
    EXPECT_EQ(fingerprints[i], fingerprints[0]) << "policy " << i;
    EXPECT_EQ(peaks[i], peaks[0]) << "policy " << i;
  }
}

TEST(Scheduler, OverlapAccounting) {
  // All-independent program: every round but the last fuses with the next
  // step's compute.
  {
    ClusterConfig cfg{8, 256};
    cfg.execution = ExecutionPolicy::parallel(2);  // async defaults on
    Cluster cluster(cfg, nullptr);
    const auto stats = cluster.run_program(ring_program(8, 4));
    EXPECT_EQ(stats.rounds, 4u);
    EXPECT_EQ(stats.overlapped, 3u);
  }
  // A barrier step in the middle breaks exactly one fusion opportunity.
  {
    ClusterConfig cfg{8, 256};
    cfg.execution = ExecutionPolicy::parallel(2);
    Cluster cluster(cfg, nullptr);
    engine::RoundProgram program;
    const auto noop = [](std::size_t, const auto&, Sender&) {};
    program.independent(noop).barrier(noop).independent(noop);
    EXPECT_EQ(cluster.run_program(program).overlapped, 1u);
  }
  // Async off or serial: never overlapped.
  for (const auto& policy :
       {ExecutionPolicy::parallel(2).with_async(false),
        ExecutionPolicy::serial()}) {
    ClusterConfig cfg{8, 256};
    cfg.execution = policy;
    Cluster cluster(cfg, nullptr);
    EXPECT_EQ(cluster.run_program(ring_program(8, 4)).overlapped, 0u);
  }
}

TEST(Scheduler, RepeatWhileRunsContinueHookAtBarrier) {
  ClusterConfig cfg{4, 64};
  cfg.execution = ExecutionPolicy::parallel(2);
  Cluster cluster(cfg, nullptr);
  std::vector<std::size_t> sent(4, 0);  // per-machine slots (contract)
  engine::RoundProgram program;
  program.independent([&](std::size_t m, const auto&, Sender& send) {
    ++sent[m];
    send.send((m + 1) % 4, {m});
  });
  std::size_t hook_calls = 0;
  program.repeat_while(
      [&](std::size_t passes) {
        ++hook_calls;
        EXPECT_EQ(passes, hook_calls);
        return passes < 3;
      },
      10);
  const auto stats = cluster.run_program(program);
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.passes, 3u);
  EXPECT_EQ(hook_calls, 3u);
  for (std::size_t m = 0; m < 4; ++m) EXPECT_EQ(sent[m], 3u);
}

TEST(Scheduler, MaxPassesCapsRepeat) {
  Cluster cluster(ClusterConfig{2, 64}, nullptr);
  engine::RoundProgram program;
  program.independent([](std::size_t, const auto&, Sender&) {});
  program.repeat_while([](std::size_t) { return true; }, 5);
  EXPECT_EQ(cluster.run_program(program).passes, 5u);
}

// A shared Engine executes one program at a time; launching a program from
// inside a step function must fail loudly, not corrupt scratch state.
TEST(Scheduler, RunProgramIsNotReentrant) {
  ClusterConfig cfg{2, 64};
  cfg.execution = ExecutionPolicy::parallel(1);
  engine::Engine shared(cfg.execution);
  Cluster a(cfg, nullptr, &shared);
  Cluster b(cfg, nullptr, &shared);
  engine::RoundProgram inner;
  inner.independent([](std::size_t, const auto&, Sender&) {});
  engine::RoundProgram outer;
  outer.independent([&](std::size_t, const auto&, Sender&) {
    b.run_program(inner);
  });
  EXPECT_THROW(a.run_program(outer), arbor::InvariantError);
  // The guard resets: the engine is usable again afterwards.
  b.run_program(inner);
  EXPECT_EQ(b.rounds_executed(), 1u);
}

// Re-entering from a continue callback is the same programming error.
TEST(Scheduler, ContinueCallbackCannotReenter) {
  engine::Engine shared(ExecutionPolicy::parallel(1));
  Cluster a({2, 64, ExecutionPolicy::parallel(1)}, nullptr, &shared);
  Cluster b({2, 64, ExecutionPolicy::parallel(1)}, nullptr, &shared);
  engine::RoundProgram inner;
  inner.independent([](std::size_t, const auto&, Sender&) {});
  engine::RoundProgram outer;
  outer.independent([](std::size_t, const auto&, Sender&) {});
  outer.repeat_while(
      [&](std::size_t) {
        b.run_program(inner);
        return false;
      },
      2);
  EXPECT_THROW(a.run_program(outer), arbor::InvariantError);
}

// A throw in step k+1's compute must leave round k charged in EVERY mode:
// the strict executor charges a round before the next compute runs, and
// the fused path commits the round (caps validated, stats exact) before
// launching the overlapped compute — otherwise ledger totals would diverge
// between async and strict exactly on the error paths the caps exist for.
TEST(Scheduler, MidProgramThrowChargesCompletedRoundsIdentically) {
  for (const auto& policy :
       {ExecutionPolicy::serial(), ExecutionPolicy::parallel(2).with_async(false),
        ExecutionPolicy::parallel(2).with_async(true)}) {
    ClusterConfig cfg{4, 4};
    cfg.execution = policy;
    RoundLedger ledger(cfg);
    Cluster cluster(cfg, &ledger);
    engine::RoundProgram program;
    program.independent([](std::size_t m, const auto&, Sender& send) {
      send.send((m + 1) % 4, {m});
    });
    program.independent([](std::size_t m, const auto&, Sender& send) {
      if (m == 1) send.send(0, {1, 2, 3, 4, 5});  // 5 > 4 send cap
    });
    EXPECT_THROW(cluster.run_program(program), arbor::InvariantError);
    EXPECT_EQ(ledger.total_rounds(), 1u) << "policy async="
                                         << policy.async_rounds;
    EXPECT_EQ(cluster.rounds_executed(), 1u);
  }
}

TEST(Scheduler, EmptyProgramRejected) {
  Cluster cluster(ClusterConfig{2, 64}, nullptr);
  EXPECT_THROW(cluster.run_program(engine::RoundProgram{}),
               arbor::InvariantError);
}

// The Engine clamps its pool to the hardware concurrency, so on a
// single-core CI box the fused deliver+compute phase runs inline. Driving
// the Scheduler directly with an unclamped ThreadPool forces the phase to
// run genuinely multi-threaded — this is the test ThreadSanitizer must
// hold race-free (scripts/check.sh --tsan).
TEST(Scheduler, FusedPhaseRaceFreeWithRealThreads) {
  const std::size_t machines = 64;
  const std::size_t capacity = 1024;
  const std::size_t steps = 8;

  // Reference: strict execution, no pool.
  engine::Scheduler strict(ExecutionPolicy::parallel(1).with_async(false),
                           nullptr);
  engine::RoundState strict_state(machines, /*flat=*/true);
  strict.run(strict_state, capacity, 0, ring_program(machines, steps), {});

  // Async execution on a real 4-way pool: every delivery of rounds
  // 0..steps-2 runs fused with the next round's compute across workers.
  engine::ThreadPool pool(4);
  engine::Scheduler async(ExecutionPolicy::parallel(4).with_async(true),
                          &pool);
  engine::RoundState async_state(machines, /*flat=*/true);
  const auto stats =
      async.run(async_state, capacity, 0, ring_program(machines, steps), {});
  EXPECT_EQ(stats.rounds, steps);
  EXPECT_EQ(stats.overlapped, steps - 1);

  for (std::size_t m = 0; m < machines; ++m) {
    const auto a = strict_state.inbox(m);
    const auto b = async_state.inbox(m);
    ASSERT_EQ(a.size(), b.size()) << "machine " << m;
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_TRUE(a[i] == static_cast<std::vector<Word>>(b[i]))
          << "machine " << m << " message " << i;
  }
}

// Same multi-threaded fused phase, but on a machine-owned-state workload
// (each machine mutates its own slab slot every step) — the pattern every
// converted protocol uses.
TEST(Scheduler, FusedPhaseMachineOwnedStateWithRealThreads) {
  const std::size_t machines = 48;
  std::vector<std::vector<Word>> slabs(machines);
  for (std::size_t m = 0; m < machines; ++m) slabs[m] = {m, m + 1};

  const auto build = [&](std::vector<std::vector<Word>>& owned) {
    engine::RoundProgram program;
    for (std::size_t s = 0; s < 6; ++s) {
      program.independent([&owned, machines](std::size_t m, const auto& inbox,
                                             Sender& send) {
        for (const auto& msg : inbox)
          for (Word w : msg) owned[m].push_back(w);
        send.send((m * 7 + 1) % machines, {owned[m].back(), m});
      });
    }
    return program;
  };

  std::vector<std::vector<Word>> serial_slabs = slabs;
  engine::Scheduler strict(ExecutionPolicy::parallel(1).with_async(false),
                           nullptr);
  engine::RoundState strict_state(machines, true);
  strict.run(strict_state, 256, 0, build(serial_slabs), {});

  std::vector<std::vector<Word>> async_slabs = slabs;
  engine::ThreadPool pool(4);
  engine::Scheduler async(ExecutionPolicy::parallel(4).with_async(true),
                          &pool);
  engine::RoundState async_state(machines, true);
  async.run(async_state, 256, 0, build(async_slabs), {});

  EXPECT_EQ(async_slabs, serial_slabs);
}

// ------------------------------------------------------ preload word cap

TEST(RoundState, PreloadValidatesReceiverCapNamingMachine) {
  for (const auto& policy :
       {ExecutionPolicy::serial(), ExecutionPolicy::parallel(2)}) {
    ClusterConfig cfg{3, 4};
    cfg.execution = policy;
    Cluster cluster(cfg, nullptr);
    cluster.preload(1, {1, 2, 3});  // 3 of 4 words: fine
    try {
      cluster.preload(1, {4, 5});  // cumulative 5 > 4
      FAIL() << "expected preload capacity violation";
    } catch (const arbor::InvariantError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("machine 1"), std::string::npos) << what;
      EXPECT_NE(what.find("5 > 4"), std::string::npos) << what;
      EXPECT_NE(what.find("preload"), std::string::npos) << what;
    }
    // Other machines keep their full budget.
    cluster.preload(2, {1, 2, 3, 4});
  }
}

// MpcContext carries the engine so every cluster in a pipeline shares it.
TEST(Engine, SharedEngineThroughContext) {
  ClusterConfig cfg{8, 512};
  cfg.execution = ExecutionPolicy::parallel(2);
  engine::Engine shared(cfg.execution);
  RoundLedger ledger(cfg);
  mpc::MpcContext ctx(cfg, &ledger, &shared);
  EXPECT_EQ(ctx.engine(), &shared);
  EXPECT_TRUE(ctx.execution_policy().is_parallel());

  Cluster a(cfg, &ledger, ctx.engine());
  Cluster b(cfg, &ledger, ctx.engine());
  EXPECT_EQ(&a.engine(), &shared);
  EXPECT_EQ(&b.engine(), &shared);
  a.run_round([](std::size_t m, const auto&, Sender& send) {
    send.send((m + 1) % 8, {m});
  });
  b.run_round([](std::size_t m, const auto&, Sender& send) {
    send.send((m + 7) % 8, {m});
  });
  EXPECT_EQ(a.inbox(1).front()[0], 0u);
  EXPECT_EQ(b.inbox(1).front()[0], 2u);
}

}  // namespace
}  // namespace arbor
