// Tests for the checker subsystem (src/check/): the always-on program
// verifier (malformed programs and RemoteSpec footguns rejected by name
// before anything executes), the model-race Monitor (deliberately
// mis-tagged and shared-accumulator programs caught with step + machines
// named, identically across in-process, loopback, and tcp execution), and
// the positive matrix — every registered protocol runs checked-clean on
// {serial, parallel} x {in-process, loopback:2, tcp:2} with outputs
// bit-identical to the unchecked serial reference.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/monitor.hpp"
#include "check/ownership.hpp"
#include "check/selfcheck.hpp"
#include "check/verify.hpp"
#include "graph/generators.hpp"
#include "local/mpc_embedding.hpp"
#include "mpc/broadcast.hpp"
#include "mpc/bundle_fetch.hpp"
#include "mpc/cluster.hpp"
#include "mpc/sample_sort.hpp"
#include "net/registry.hpp"
#include "net/storm.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace arbor::check {
namespace {

using engine::ExecutionPolicy;
using engine::Word;
using mpc::ClusterConfig;
using mpc::TransportConfig;

/// Expect an InvariantError whose message contains every needle.
template <typename Fn>
void expect_rejected(const Fn& fn,
                     const std::vector<std::string>& needles) {
  try {
    fn();
    FAIL() << "expected rejection naming \"" << needles.front() << "\"";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    for (const std::string& needle : needles)
      EXPECT_NE(what.find(needle), std::string::npos)
          << "missing \"" << needle << "\" in: " << what;
  }
}

// -------------------------------------------------- program verifier

VerifyContext context(std::size_t machines = 4, std::size_t capacity = 256) {
  VerifyContext ctx;
  ctx.machines = machines;
  ctx.capacity = capacity;
  return ctx;
}

engine::StepFn noop_step() {
  return [](std::size_t, const engine::InboxView&, engine::Sender&) {};
}

TEST(ProgramVerifier, EmptyAndNullStepsRejected) {
  expect_rejected([] { verify_program({}, context()); },
                  {"program verifier: ", "no steps"});

  engine::RoundProgram null_fn;
  null_fn.steps.push_back({nullptr, engine::StepKind::kBarrier, "s"});
  expect_rejected([&] { verify_program(null_fn, context()); },
                  {"program verifier: ", "\"s\"", "null step function"});
}

TEST(ProgramVerifier, StepNameMustNotFlipKind) {
  engine::RoundProgram program;
  program.independent("level", noop_step());
  program.barrier("level", noop_step());
  expect_rejected(
      [&] { verify_program(program, context()); },
      {"program verifier: ", "\"level\"", "machine-independent",
       "barrier"});

  // Reusing a name at the SAME kind is legal (sample sort charges every
  // tree level to one label), and so are anonymous steps of mixed kinds.
  engine::RoundProgram reuse;
  reuse.independent("level", noop_step()).independent("level", noop_step());
  verify_program(reuse, context());
  engine::RoundProgram anonymous;
  anonymous.independent(noop_step()).barrier(noop_step());
  verify_program(anonymous, context());
}

TEST(ProgramVerifier, PassControlConsistency) {
  engine::RoundProgram program;
  program.barrier("s", noop_step());
  program.max_passes = 5;  // but no repeat_while
  expect_rejected([&] { verify_program(program, context()); },
                  {"program verifier: ", "max_passes is 5",
                   "no continue callback"});

  engine::RoundProgram zero;
  zero.barrier("s", noop_step());
  zero.repeat_while([](std::size_t) { return false; }, 3);
  zero.max_passes = 0;
  expect_rejected([&] { verify_program(zero, context()); },
                  {"program verifier: ", "max_passes 0"});
}

// The RemoteSpec footgun this subsystem was built to close: a spec whose
// flags and callbacks disagree used to surface deep inside the transport
// (or silently drop output). Now it is an early named error.
TEST(ProgramVerifier, RemoteSpecFootgunsRejectedByName) {
  const auto distributable = [](engine::RemoteSpec spec) {
    engine::RoundProgram program;
    program.barrier("spec.step", noop_step());
    program.distributable(std::move(spec));
    return program;
  };

  engine::RemoteSpec null_sink;
  null_sink.name = "spec.null_sink";
  null_sink.has_output = true;  // ...but no output_sink
  expect_rejected(
      [&] { verify_program(distributable(std::move(null_sink)), context()); },
      {"program verifier: ", "\"spec.null_sink\"",
       "has_output is true but output_sink is null"});

  engine::RemoteSpec sink_only;
  sink_only.name = "spec.sink_only";
  sink_only.output_sink = [](std::size_t, std::span<const Word>) {};
  expect_rejected(
      [&] { verify_program(distributable(std::move(sink_only)), context()); },
      {"program verifier: ", "output_sink is set but has_output is false"});

  engine::RemoteSpec vote_flag;
  vote_flag.name = "spec.vote_flag";
  vote_flag.has_vote = true;  // ...but no continue_with_votes
  expect_rejected(
      [&] { verify_program(distributable(std::move(vote_flag)), context()); },
      {"program verifier: ", "\"spec.vote_flag\"",
       "has_vote is true but continue_with_votes is null"});

  engine::RemoteSpec vote_cb;
  vote_cb.name = "spec.vote_cb";
  vote_cb.continue_with_votes = [](std::size_t, Word) { return false; };
  expect_rejected(
      [&] { verify_program(distributable(std::move(vote_cb)), context()); },
      {"program verifier: ", "continue_with_votes is set but has_vote is "
                             "false"});
}

TEST(ProgramVerifier, DistributableProgramsMustNameEveryStep) {
  engine::RoundProgram program;
  program.independent("named.step", noop_step());
  program.barrier(noop_step());  // anonymous
  engine::RemoteSpec spec;
  spec.name = "spec.anonymous";
  program.distributable(std::move(spec));
  expect_rejected([&] { verify_program(program, context()); },
                  {"program verifier: ", "\"spec.anonymous\"", "step 1",
                   "unnamed"});
}

TEST(ProgramVerifier, InputSlabsCheckedAgainstMachinesAndCapacity) {
  const auto with_inputs = [](std::vector<std::vector<Word>> inputs) {
    engine::RoundProgram program;
    program.barrier("spec.step", noop_step());
    engine::RemoteSpec spec;
    spec.name = "spec.inputs";
    spec.inputs = std::move(inputs);
    program.distributable(std::move(spec));
    return program;
  };

  expect_rejected(
      [&] { verify_program(with_inputs({{1}, {2}}), context(4, 256)); },
      {"program verifier: ", "2 slabs for 4 machines"});
  expect_rejected(
      [&] {
        verify_program(with_inputs({{}, {}, {}, std::vector<Word>(300, 7)}),
                       context(4, 256));
      },
      {"program verifier: ", "machine 3", "300 words",
       "per-machine budget S = 256"});
}

// Deep pass: the driver-side program must agree with what the registered
// factory rebuilds, because that is the program every worker actually runs.
TEST(ProgramVerifier, FactoryRebuildCrossChecked) {
  VerifyContext ctx = context(4, 4096);
  ctx.registry = &net::Registry::builtin();

  // A spec naming an unregistered program fails the lookup by name.
  engine::RoundProgram unknown;
  unknown.barrier("spec.step", noop_step());
  unknown.exempt_cost();  // fixtures probe the rebuild rules, not bounds
  engine::RemoteSpec spec;
  spec.name = "check.no_such_program";
  unknown.distributable(std::move(spec));
  expect_rejected([&] { verify_program(unknown, ctx); },
                  {"check.no_such_program"});

  // A driver program whose shape drifted from the registered factory's
  // rebuild is caught step by step. net.storm rebuilds one step named
  // "net.storm.scatter"; claim a different name on the driver side.
  engine::RoundProgram drift;
  drift.independent("net.storm.renamed", noop_step());
  drift.exempt_cost();
  engine::RemoteSpec storm_spec;
  storm_spec.name = "net.storm";
  // batch 16, ONE round: the factory builds one scatter step per round,
  // and the driver side declares exactly one (renamed) step.
  storm_spec.scalars = {16, 1};
  drift.distributable(std::move(storm_spec));
  expect_rejected([&] { verify_program(drift, ctx); },
                  {"program verifier: ", "\"net.storm\"",
                   "\"net.storm.renamed\" on the driver but "
                   "\"net.storm.scatter\" in the factory rebuild"});
}

// Verification is wired into Cluster::run_program unconditionally — the
// regression: a footgun spec must be named BEFORE any round executes.
TEST(ProgramVerifier, ClusterRejectsFootgunSpecBeforeExecuting) {
  ClusterConfig cfg{4, 256};
  mpc::Cluster cluster(cfg, nullptr);
  engine::RoundProgram program;
  program.barrier("spec.step", noop_step());
  engine::RemoteSpec spec;
  spec.name = "spec.null_sink";
  spec.has_output = true;
  program.distributable(std::move(spec));
  expect_rejected([&] { cluster.run_program(program); },
                  {"program verifier: ", "output_sink is null"});
  EXPECT_EQ(cluster.rounds_executed(), 0u);
}

// ----------------------------------------- checked-execution negatives

/// Run `make(machines)` under checked execution on every transport and
/// expect the same named violation from each.
void expect_caught_everywhere(engine::RoundProgram (*make)(std::size_t),
                              const std::vector<std::string>& needles) {
  for (const TransportConfig& transport :
       {TransportConfig{}, TransportConfig::loopback(2),
        TransportConfig::tcp(2)}) {
    ClusterConfig cfg{4, 256};
    cfg.transport = transport;
    cfg.execution = ExecutionPolicy::checked();
    mpc::Cluster cluster(cfg, nullptr);
    expect_rejected([&] { cluster.run_program(make(4)); }, needles);
  }
}

TEST(CheckedExecution, CrossMachineWriteCaughtWithStepAndMachinesNamed) {
  expect_caught_everywhere(
      make_cross_write_selfcheck,
      {"checked execution", "\"check.cross_write.step\"",
       "wrote state owned by machine", "slots["});
}

TEST(CheckedExecution, MisTaggedIndependentStepCaughtByOrderReplay) {
  expect_caught_everywhere(
      make_order_dependent_selfcheck,
      {"checked execution", "\"check.order_dependent.step\"",
       "machine execution order"});
}

TEST(CheckedExecution, SharedAccumulatorCaughtThroughOwnedSpan) {
  expect_caught_everywhere(
      make_shared_accumulator_selfcheck,
      {"checked execution", "\"check.shared_accumulator.step\"",
       "wrote state owned by machine 0"});
}

TEST(CheckedExecution, StaleFetchCacheEntryCaughtEverywhere) {
  expect_caught_everywhere(
      make_stale_fetch_cache_selfcheck,
      {"checked execution", "\"check.stale_fetch_cache.step\"",
       "reused a stale fetch-cache entry (epoch 0)",
       "the owning state changed but the epoch did not"});
}

TEST(CheckedExecution, ContinueCallbackMutationCaught) {
  expect_caught_everywhere(
      make_continue_mutation_selfcheck,
      {"checked execution", "mutated state owned by machine",
       "machine-independent step \"check.continue_mutation.step\""});
}

// The violating write is identified precisely: cross_write's descending
// probe runs machine 3 first, which writes its successor's slot 0.
TEST(CheckedExecution, ViolationIsDeterministic) {
  for (int repeat = 0; repeat < 3; ++repeat) {
    ClusterConfig cfg{4, 256};
    cfg.execution = ExecutionPolicy::checked();
    mpc::Cluster cluster(cfg, nullptr);
    expect_rejected([&] { cluster.run_program(make_cross_write_selfcheck(4)); },
                    {"machine 3 wrote state owned by machine 0"});
  }
}

TEST(CheckedExecution, ParallelPolicyCatchesTheSameViolation) {
  ClusterConfig cfg{4, 256};
  cfg.execution = ExecutionPolicy::parallel(2).with_check(true);
  mpc::Cluster cluster(cfg, nullptr);
  expect_rejected([&] { cluster.run_program(make_cross_write_selfcheck(4)); },
                  {"\"check.cross_write.step\"",
                   "machine 3 wrote state owned by machine 0"});
}

TEST(CheckedExecution, OwnedSpanIsANoOpWhenNoCheckedRunIsActive) {
  std::vector<Word> state(4, 7);
  owned_span(2, std::span<Word>(state));  // must not throw or touch state
  EXPECT_EQ(state, (std::vector<Word>{7, 7, 7, 7}));
}

TEST(CheckedExecution, CleanSelfOwnedProgramPassesChecked) {
  // The shared_accumulator shape minus the violation: every machine
  // accumulates into ITS OWN slot through owned_span.
  auto slots = std::make_shared<std::vector<Word>>(4, 0);
  engine::RoundProgram program;
  program.independent("check_test.clean.step",
                      [slots](std::size_t m, const engine::InboxView&,
                              engine::Sender& send) {
                        owned_span(m, {slots->data() + m, 1});
                        (*slots)[m] += static_cast<Word>(m + 1);
                        send.send(m, std::vector<Word>{(*slots)[m]});
                      });
  ClusterConfig cfg{4, 256};
  cfg.execution = ExecutionPolicy::checked();
  mpc::Cluster cluster(cfg, nullptr);
  cluster.run_program(program);
  EXPECT_EQ(*slots, (std::vector<Word>{1, 2, 3, 4}));
}

// ------------------------------------------------- positive matrix

/// Run `body(cluster, first)` once unchecked on the serial in-process
/// reference, then under checked execution on {serial, parallel(2)} x
/// {in-process, loopback:2, tcp:2}. The body captures its reference
/// output on the first call and EXPECTs equality after — checked
/// execution must change nothing observable. `route_aggregation` selects
/// the sample sorts' bulk vs. per-record route in every cell (including
/// the reference), so both paths can be driven through the full matrix.
template <typename RunFn>
void expect_checked_clean(
    const char* what, const RunFn& body, std::size_t machines = 8,
    std::size_t capacity = 4096, bool route_aggregation = true,
    const std::function<void(ClusterConfig&)>& configure = {}) {
  {
    ClusterConfig cfg{machines, capacity};
    cfg.route_aggregation = route_aggregation;
    if (configure) configure(cfg);
    mpc::Cluster cluster(cfg, nullptr);
    body(cluster, true);
  }
  int mode = 0;
  for (const ExecutionPolicy& policy :
       {ExecutionPolicy::checked(),
        ExecutionPolicy::parallel(2).with_check(true)}) {
    for (const TransportConfig& transport :
         {TransportConfig{}, TransportConfig::loopback(2),
          TransportConfig::tcp(2)}) {
      SCOPED_TRACE(std::string(what) + " checked mode " +
                   std::to_string(mode++));
      ClusterConfig cfg{machines, capacity};
      cfg.execution = policy;
      cfg.transport = transport;
      cfg.route_aggregation = route_aggregation;
      if (configure) configure(cfg);
      mpc::Cluster cluster(cfg, nullptr);
      body(cluster, false);
    }
  }
}

std::vector<std::vector<Word>> random_slabs(std::size_t machines,
                                            std::size_t per_machine,
                                            std::uint64_t seed) {
  util::SplitRng rng(seed);
  std::vector<std::vector<Word>> slabs(machines);
  for (auto& slab : slabs)
    for (std::size_t i = 0; i < per_machine; ++i)
      slab.push_back(rng.next_below(1u << 20));
  return slabs;
}

TEST(CheckedMatrix, SampleSortTree) {
  const auto input = random_slabs(8, 48, 221);
  std::vector<std::vector<Word>> reference;
  expect_checked_clean("sample_sort", [&](mpc::Cluster& cluster, bool first) {
    const mpc::SampleSortResult result = sample_sort(cluster, input);
    if (first)
      reference = result.slabs;
    else
      EXPECT_EQ(result.slabs, reference);
  });
}

TEST(CheckedMatrix, SampleSortCoordinator) {
  const auto input = random_slabs(8, 48, 222);
  std::vector<std::vector<Word>> reference;
  expect_checked_clean(
      "sample_sort/coordinator", [&](mpc::Cluster& cluster, bool first) {
        const mpc::SampleSortResult result = sample_sort(
            cluster, input, 8, mpc::SplitterStrategy::kCoordinator);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      });
}

TEST(CheckedMatrix, RecordSampleSort) {
  util::SplitRng rng(223);
  std::vector<std::vector<Word>> input(8);
  std::size_t payload = 0;
  for (auto& slab : input)
    for (int r = 0; r < 24; ++r) {
      slab.push_back(rng.next_below(8));
      slab.push_back(payload++);
    }
  std::vector<std::vector<Word>> reference;
  expect_checked_clean(
      "sample_sort_records", [&](mpc::Cluster& cluster, bool first) {
        const mpc::RecordSortResult result =
            sample_sort_records(cluster, input, 2, 1);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      });
}

// The defaults above already drive the bulk route through the whole
// checked matrix (route_aggregation defaults on); these two pin the
// per-record fallback to the same standard, and cross-check that both
// knob settings produce the identical slabs.
TEST(CheckedMatrix, SampleSortTreeNoAggregation) {
  const auto input = random_slabs(8, 48, 221);  // same seed as the bulk run
  std::vector<std::vector<Word>> reference;
  expect_checked_clean(
      "sample_sort/no-agg",
      [&](mpc::Cluster& cluster, bool first) {
        const mpc::SampleSortResult result = sample_sort(cluster, input);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      },
      8, 4096, /*route_aggregation=*/false);
  // Against the aggregated route: same buckets, bit for bit.
  ClusterConfig cfg{8, 4096};
  cfg.route_aggregation = true;
  mpc::Cluster cluster(cfg, nullptr);
  EXPECT_EQ(sample_sort(cluster, input).slabs, reference);
}

TEST(CheckedMatrix, RecordSampleSortNoAggregation) {
  util::SplitRng rng(223);
  std::vector<std::vector<Word>> input(8);
  std::size_t payload = 0;
  for (auto& slab : input)
    for (int r = 0; r < 24; ++r) {
      slab.push_back(rng.next_below(8));
      slab.push_back(payload++);
    }
  std::vector<std::vector<Word>> reference;
  expect_checked_clean(
      "sample_sort_records/no-agg",
      [&](mpc::Cluster& cluster, bool first) {
        const mpc::RecordSortResult result =
            sample_sort_records(cluster, input, 2, 1);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      },
      8, 4096, /*route_aggregation=*/false);
}

// Same standard for the new knobs' fallback arms: the re-sort baseline
// (merge_path off) and the uncached fetch path (fetch_cache off) must run
// checked-clean everywhere, and the merge-path cross-check pins both knob
// settings to identical slabs.
TEST(CheckedMatrix, RecordSampleSortNoMergePath) {
  util::SplitRng rng(227);
  std::vector<std::vector<Word>> input(8);
  std::size_t payload = 0;
  for (auto& slab : input)
    for (int r = 0; r < 24; ++r) {
      slab.push_back(rng.next_below(8));
      slab.push_back(payload++);
    }
  std::vector<std::vector<Word>> reference;
  expect_checked_clean(
      "sample_sort_records/no-merge-path",
      [&](mpc::Cluster& cluster, bool first) {
        const mpc::RecordSortResult result =
            sample_sort_records(cluster, input, 2, 1);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      },
      8, 4096, /*route_aggregation=*/true,
      [](ClusterConfig& cfg) { cfg.merge_path = false; });
  // Against the merge path: same buckets, bit for bit.
  ClusterConfig cfg{8, 4096};
  cfg.merge_path = true;
  mpc::Cluster cluster(cfg, nullptr);
  EXPECT_EQ(sample_sort_records(cluster, input, 2, 1).slabs, reference);
}

TEST(CheckedMatrix, EmbeddedPeelingNoFetchCache) {
  util::SplitRng rng(228);
  const graph::Graph g = graph::gnm(200, 600, rng);
  std::vector<std::uint32_t> reference_layers;
  expect_checked_clean(
      "peeling/no-fetch-cache",
      [&](mpc::Cluster& cluster, bool first) {
        const local::EmbeddedPeelingResult result =
            local::embedded_threshold_peeling(g, 6, cluster, 100);
        if (first)
          reference_layers = result.layer;
        else
          EXPECT_EQ(result.layer, reference_layers);
      },
      8, 4096, /*route_aggregation=*/true,
      [](ClusterConfig& cfg) { cfg.fetch_cache = false; });
}

TEST(CheckedMatrix, BroadcastAndConverge) {
  std::vector<std::vector<Word>> reference_copies;
  expect_checked_clean("broadcast", [&](mpc::Cluster& cluster, bool first) {
    const mpc::BroadcastResult result =
        broadcast_tree(cluster, 3, {7, 8, 9}, 2);
    if (first)
      reference_copies = result.copies;
    else
      EXPECT_EQ(result.copies, reference_copies);
  });
  expect_checked_clean("converge", [&](mpc::Cluster& cluster, bool) {
    std::vector<Word> values(cluster.num_machines());
    for (std::size_t m = 0; m < values.size(); ++m) values[m] = m * 3 + 1;
    const mpc::ConvergeResult result = converge_sum(cluster, 2, values, 2);
    EXPECT_EQ(result.sum, 92u);
  });
}

TEST(CheckedMatrix, BundleFetch) {
  std::vector<std::vector<Word>> bundles(12);
  std::vector<std::vector<graph::VertexId>> requests(12);
  util::SplitRng rng(224);
  for (std::size_t v = 0; v < bundles.size(); ++v)
    for (std::size_t i = 0; i <= rng.next_below(3); ++i)
      bundles[v].push_back(v * 100 + i);
  for (std::size_t u = 0; u < requests.size(); ++u)
    for (std::size_t i = 0; i < rng.next_below(4); ++i)
      requests[u].push_back(rng.next_below(bundles.size()));
  std::vector<std::vector<std::vector<Word>>> reference;
  expect_checked_clean(
      "bundle_fetch", [&](mpc::Cluster& cluster, bool first) {
        const mpc::Level0BundleFetchResult result =
            fetch_bundles_program(cluster, bundles, requests);
        if (first)
          reference = result.delivered;
        else
          EXPECT_EQ(result.delivered, reference);
      });
}

TEST(CheckedMatrix, EmbeddedPeeling) {
  util::SplitRng rng(225);
  const graph::Graph g = graph::gnm(200, 600, rng);
  std::vector<std::uint32_t> reference_layers;
  std::uint32_t reference_num_layers = 0;
  expect_checked_clean("peeling", [&](mpc::Cluster& cluster, bool first) {
    const local::EmbeddedPeelingResult result =
        local::embedded_threshold_peeling(g, 6, cluster, 100);
    if (first) {
      reference_layers = result.layer;
      reference_num_layers = result.num_layers;
    } else {
      EXPECT_EQ(result.layer, reference_layers);
      EXPECT_EQ(result.num_layers, reference_num_layers);
    }
  });
}

TEST(CheckedMatrix, Storm) {
  const auto make_storm = [](std::size_t machines) {
    auto st = std::make_shared<net::StormState>();
    st->machines = machines;
    st->batch = 16;
    st->rounds = 8;
    st->slabs = random_slabs(machines, 16, 226);
    return net::make_distributable_storm_program(st);
  };
  std::vector<std::vector<std::vector<Word>>> reference;
  expect_checked_clean("storm", [&](mpc::Cluster& cluster, bool first) {
    cluster.run_program(make_storm(cluster.num_machines()));
    std::vector<std::vector<std::vector<Word>>> inboxes;
    for (std::size_t m = 0; m < cluster.num_machines(); ++m) {
      inboxes.emplace_back();
      for (const auto& msg : cluster.inbox(m))
        inboxes.back().emplace_back(msg.begin(), msg.end());
    }
    if (first)
      reference = inboxes;
    else
      EXPECT_EQ(inboxes, reference);
  });
}

// Every registered builtin program name resolves — the registry the
// verifier's deep pass trusts is the one the workers use.
TEST(CheckedMatrix, SelfCheckProgramsAreRegistered) {
  const net::Registry& registry = net::Registry::builtin();
  for (const char* name :
       {"check.cross_write", "check.order_dependent",
        "check.shared_accumulator", "check.underdeclared",
        "check.stale_fetch_cache", "check.continue_mutation"})
    EXPECT_NO_THROW(registry.find(name)) << name;
}

}  // namespace
}  // namespace arbor::check
