// Tests for the real Level-0 distributed programs (sample sort, broadcast
// trees, convergecast): correctness under the traffic caps, and the
// cross-check that their executed round counts match what the Level-1
// primitives charge analytically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "mpc/broadcast.hpp"
#include "mpc/cluster.hpp"
#include "mpc/primitives.hpp"
#include "mpc/sample_sort.hpp"
#include "util/rng.hpp"

namespace arbor::mpc {
namespace {

std::vector<std::vector<Word>> random_slabs(std::size_t machines,
                                            std::size_t per_machine,
                                            std::uint64_t seed) {
  util::SplitRng rng(seed);
  std::vector<std::vector<Word>> slabs(machines);
  for (auto& slab : slabs)
    for (std::size_t i = 0; i < per_machine; ++i)
      slab.push_back(rng.next_below(1u << 20));
  return slabs;
}

std::vector<Word> flatten_sorted(const std::vector<std::vector<Word>>& s) {
  std::vector<Word> all;
  for (const auto& slab : s) all.insert(all.end(), slab.begin(), slab.end());
  std::sort(all.begin(), all.end());
  return all;
}

TEST(SampleSort, SortsAcrossMachines) {
  const ClusterConfig cfg{8, 512};
  Cluster cluster(cfg, nullptr);
  const auto input = random_slabs(8, 32, 1);
  const SampleSortResult result = sample_sort(cluster, input);

  // Concatenation in machine order must be globally sorted and a
  // permutation of the input.
  std::vector<Word> out;
  for (const auto& slab : result.slabs)
    out.insert(out.end(), slab.begin(), slab.end());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out, flatten_sorted(input));
}

TEST(SampleSort, ConstantRounds) {
  const ClusterConfig cfg{16, 1024};
  Cluster cluster(cfg, nullptr);
  const auto input = random_slabs(16, 48, 2);
  const SampleSortResult result = sample_sort(cluster, input);
  // 3 communication rounds: sample, splitters, route.
  EXPECT_EQ(result.rounds, 3u);

  // The Level-1 charge for the same volume must not be smaller than what
  // the real program needs per "constant-round" unit (it charges ⌈log_S N⌉
  // which is ≥ 1; the Level-0 program realizes the constant).
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  EXPECT_GE(result.rounds, ctx.sort_rounds(16 * 48));
}

TEST(SampleSort, HandlesEmptyAndSkewedSlabs) {
  const ClusterConfig cfg{4, 512};
  Cluster cluster(cfg, nullptr);
  std::vector<std::vector<Word>> input(4);
  input[2] = {5, 3, 9, 1, 7, 7, 2};  // all data on one machine
  const SampleSortResult result = sample_sort(cluster, input);
  std::vector<Word> out;
  for (const auto& slab : result.slabs)
    out.insert(out.end(), slab.begin(), slab.end());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.size(), 7u);
}

TEST(SampleSort, DuplicateKeysPreserved) {
  const ClusterConfig cfg{4, 512};
  Cluster cluster(cfg, nullptr);
  std::vector<std::vector<Word>> input(4, std::vector<Word>(8, 42));
  const SampleSortResult result = sample_sort(cluster, input);
  std::size_t total = 0;
  for (const auto& slab : result.slabs) {
    for (Word w : slab) EXPECT_EQ(w, 42u);
    total += slab.size();
  }
  EXPECT_EQ(total, 32u);
}

TEST(BroadcastTree, AllMachinesReceive) {
  const ClusterConfig cfg{13, 256};
  Cluster cluster(cfg, nullptr);
  const std::vector<Word> payload{1, 2, 3};
  const BroadcastResult result = broadcast_tree(cluster, 4, payload, 3);
  for (std::size_t m = 0; m < 13; ++m)
    EXPECT_EQ(result.copies[m], payload) << "machine " << m;
}

TEST(BroadcastTree, RoundsLogarithmicInFanout) {
  const ClusterConfig cfg{64, 1024};
  Cluster cluster(cfg, nullptr);
  const BroadcastResult result = broadcast_tree(cluster, 0, {7}, 4);
  // ⌈log_4 64⌉ = 3 levels of the tree.
  EXPECT_LE(result.rounds, 4u);
  EXPECT_GE(result.rounds, 3u);

  // Cross-check the Level-1 analytic formula (fanout ~ √S = 32 → 2 rounds
  // for 64 copies; our Level-0 run with the narrower fanout 4 may use
  // more rounds but stays O(log)).
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  EXPECT_LE(ctx.broadcast_rounds(64), result.rounds + 2);
}

TEST(BroadcastTree, PayloadCapacityEnforced) {
  const ClusterConfig cfg{4, 8};
  Cluster cluster(cfg, nullptr);
  // Payload of 5 words × fanout 2 = 10 > 8 send budget: must throw.
  EXPECT_THROW(broadcast_tree(cluster, 0, {1, 2, 3, 4, 5}, 2),
               arbor::InvariantError);
}

TEST(ConvergeSum, SumsToRoot) {
  const ClusterConfig cfg{10, 256};
  Cluster cluster(cfg, nullptr);
  std::vector<Word> values(10);
  Word expected = 0;
  for (std::size_t m = 0; m < 10; ++m) {
    values[m] = m * m + 1;
    expected += values[m];
  }
  const ConvergeResult result = converge_sum(cluster, 3, values, 3);
  EXPECT_EQ(result.sum, expected);
}

TEST(ConvergeSum, SingleMachine) {
  const ClusterConfig cfg{1, 64};
  Cluster cluster(cfg, nullptr);
  const ConvergeResult result = converge_sum(cluster, 0, {99}, 2);
  EXPECT_EQ(result.sum, 99u);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(ConvergeSum, MatchesBroadcastDepth) {
  const ClusterConfig cfg{40, 256};
  Cluster cluster(cfg, nullptr);
  std::vector<Word> ones(40, 1);
  const ConvergeResult result = converge_sum(cluster, 0, ones, 3);
  EXPECT_EQ(result.sum, 40u);
  EXPECT_LE(result.rounds, 5u);  // ⌈log_3 40⌉ + 1
}

}  // namespace
}  // namespace arbor::mpc
