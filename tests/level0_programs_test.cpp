// Tests for the real Level-0 distributed programs (sample sort, broadcast
// trees, convergecast): correctness under the traffic caps, and the
// cross-check that their executed round counts match what the Level-1
// primitives charge analytically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

#include "graph/generators.hpp"
#include "local/mpc_embedding.hpp"
#include "util/assert.hpp"
#include "mpc/broadcast.hpp"
#include "mpc/bundle_fetch.hpp"
#include "mpc/cluster.hpp"
#include "mpc/primitives.hpp"
#include "mpc/sample_sort.hpp"
#include "util/hashing.hpp"
#include "util/rng.hpp"

namespace arbor::mpc {
namespace {

std::vector<std::vector<Word>> random_slabs(std::size_t machines,
                                            std::size_t per_machine,
                                            std::uint64_t seed) {
  util::SplitRng rng(seed);
  std::vector<std::vector<Word>> slabs(machines);
  for (auto& slab : slabs)
    for (std::size_t i = 0; i < per_machine; ++i)
      slab.push_back(rng.next_below(1u << 20));
  return slabs;
}

std::vector<Word> flatten_sorted(const std::vector<std::vector<Word>>& s) {
  std::vector<Word> all;
  for (const auto& slab : s) all.insert(all.end(), slab.begin(), slab.end());
  std::sort(all.begin(), all.end());
  return all;
}

TEST(SampleSort, SortsAcrossMachines) {
  const ClusterConfig cfg{8, 512};
  Cluster cluster(cfg, nullptr);
  const auto input = random_slabs(8, 32, 1);
  const SampleSortResult result = sample_sort(cluster, input);

  // Concatenation in machine order must be globally sorted and a
  // permutation of the input.
  std::vector<Word> out;
  for (const auto& slab : result.slabs)
    out.insert(out.end(), slab.begin(), slab.end());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out, flatten_sorted(input));
}

TEST(SampleSort, ConstantRounds) {
  const ClusterConfig cfg{16, 1024};
  const auto input = random_slabs(16, 48, 2);

  // Tree strategy (default): 6 communication rounds — up, up, pick, down,
  // route, route.
  Cluster cluster(cfg, nullptr);
  const SampleSortResult result = sample_sort(cluster, input);
  EXPECT_EQ(result.rounds, 6u);

  // Coordinator strategy: the legacy 3 rounds — sample, splitters, route.
  Cluster central(cfg, nullptr);
  const SampleSortResult coordinated =
      sample_sort(central, input, 8, SplitterStrategy::kCoordinator);
  EXPECT_EQ(coordinated.rounds, 3u);

  // Both are O(1): the Level-1 charge for the same volume charges
  // ⌈log_S N⌉ ≥ 1 units; the Level-0 programs realize the constant.
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  EXPECT_GE(result.rounds, ctx.sort_rounds(16 * 48));

  // Same multiset, same globally sorted concatenation, under either
  // strategy (bucket boundaries may differ — splitter pools do).
  std::vector<Word> tree_out;
  for (const auto& slab : result.slabs)
    tree_out.insert(tree_out.end(), slab.begin(), slab.end());
  std::vector<Word> central_out;
  for (const auto& slab : coordinated.slabs)
    central_out.insert(central_out.end(), slab.begin(), slab.end());
  EXPECT_EQ(tree_out, central_out);
  EXPECT_EQ(tree_out, flatten_sorted(input));
}

TEST(SampleSort, HandlesEmptyAndSkewedSlabs) {
  const ClusterConfig cfg{4, 512};
  Cluster cluster(cfg, nullptr);
  std::vector<std::vector<Word>> input(4);
  input[2] = {5, 3, 9, 1, 7, 7, 2};  // all data on one machine
  const SampleSortResult result = sample_sort(cluster, input);
  std::vector<Word> out;
  for (const auto& slab : result.slabs)
    out.insert(out.end(), slab.begin(), slab.end());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.size(), 7u);
}

// Regression: slabs smaller than samples_per_machine used to emit repeated
// sample indices (i·size/samples collides for size < samples), skewing the
// splitter pool toward the low keys of tiny slabs. Samples are now clamped
// to the slab size — every machine contributes each key at most once and
// the sort stays a correct permutation.
TEST(SampleSort, TinySkewedSlabsClampSamples) {
  const ClusterConfig cfg{4, 512};
  Cluster cluster(cfg, nullptr);
  std::vector<std::vector<Word>> input(4);
  input[0] = {1000};            // far smaller than samples_per_machine = 8
  input[1] = {7, 7};            // duplicates in a tiny slab
  input[2] = {900, 5, 900};     // skewed values
  input[3] = {};                // empty slab sends an empty sample
  const SampleSortResult result = sample_sort(cluster, input, 8);
  std::vector<Word> out;
  for (const auto& slab : result.slabs)
    out.insert(out.end(), slab.begin(), slab.end());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out, flatten_sorted(input));
}

// Regression: a single-machine cluster takes the explicit empty-splitter
// path (the tree scatters [0, 0] packets, the coordinator broadcasts an
// empty set to itself) and still sorts in the standard round count.
TEST(SampleSort, SingleMachine) {
  const ClusterConfig cfg{1, 512};
  const std::vector<std::vector<Word>> input{{9, 2, 7, 2, 5}};
  for (const SplitterStrategy strategy :
       {SplitterStrategy::kTree, SplitterStrategy::kCoordinator}) {
    Cluster cluster(cfg, nullptr);
    const SampleSortResult result = sample_sort(cluster, input, 8, strategy);
    ASSERT_EQ(result.slabs.size(), 1u);
    EXPECT_EQ(result.slabs[0], (std::vector<Word>{2, 2, 5, 7, 9}));
    EXPECT_EQ(result.rounds,
              strategy == SplitterStrategy::kTree ? 6u : 3u);
  }
}

TEST(SampleSort, SingleMachineEmptyInput) {
  const ClusterConfig cfg{1, 64};
  Cluster cluster(cfg, nullptr);
  const SampleSortResult result = sample_sort(cluster, {{}});
  ASSERT_EQ(result.slabs.size(), 1u);
  EXPECT_TRUE(result.slabs[0].empty());
  EXPECT_EQ(result.rounds, 6u);
}

// The tree topology's awkward machine counts: p ∈ {1, 2, 3} (trees of
// height < 2), non-perfect-square p (a ragged last group), and p where
// the last group has a single member (its relay has itself as the only
// child). Every count must sort every input shape.
TEST(SampleSortTree, AwkwardMachineCounts) {
  for (const std::size_t machines : {1u, 2u, 3u, 5u, 7u, 10u, 12u, 13u}) {
    const ClusterConfig cfg{machines, 4096};
    const auto input = random_slabs(machines, 19, 100 + machines);
    Cluster cluster(cfg, nullptr);
    const SampleSortResult result = sample_sort(cluster, input);
    EXPECT_EQ(result.rounds, 6u);
    std::vector<Word> out;
    for (const auto& slab : result.slabs)
      out.insert(out.end(), slab.begin(), slab.end());
    EXPECT_EQ(out, flatten_sorted(input)) << "machines=" << machines;
  }
}

// Empty slabs at interior relay ranks: all data sits on non-relay
// machines, so every relay pools only its children's samples (and the
// ragged last group's relay may pool nothing at all) — relays must
// forward clean packets, never zero-width frames the route rounds choke
// on.
TEST(SampleSortTree, EmptySlabsAtRelayRanks) {
  const std::size_t machines = 10;  // r = 4: relays at 0, 4, 8
  const ClusterConfig cfg{machines, 4096};
  util::SplitRng rng(77);
  std::vector<std::vector<Word>> input(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    if (m % 4 == 0) continue;  // relays hold nothing
    for (int i = 0; i < 23; ++i) input[m].push_back(rng.next_below(1u << 20));
  }
  Cluster cluster(cfg, nullptr);
  const SampleSortResult result = sample_sort(cluster, input);
  std::vector<Word> out;
  for (const auto& slab : result.slabs)
    out.insert(out.end(), slab.begin(), slab.end());
  EXPECT_EQ(out, flatten_sorted(input));

  // The mirror image: only relays hold data (every leaf sample is empty).
  std::vector<std::vector<Word>> relays_only(machines);
  for (std::size_t m = 0; m < machines; m += 4)
    for (int i = 0; i < 23; ++i)
      relays_only[m].push_back(rng.next_below(1u << 20));
  Cluster cluster2(cfg, nullptr);
  const SampleSortResult result2 = sample_sort(cluster2, relays_only);
  std::vector<Word> out2;
  for (const auto& slab : result2.slabs)
    out2.insert(out2.end(), slab.begin(), slab.end());
  EXPECT_EQ(out2, flatten_sorted(relays_only));
}

TEST(SampleSort, DuplicateKeysPreserved) {
  const ClusterConfig cfg{4, 512};
  Cluster cluster(cfg, nullptr);
  std::vector<std::vector<Word>> input(4, std::vector<Word>(8, 42));
  const SampleSortResult result = sample_sort(cluster, input);
  std::size_t total = 0;
  for (const auto& slab : result.slabs) {
    for (Word w : slab) EXPECT_EQ(w, 42u);
    total += slab.size();
  }
  EXPECT_EQ(total, 32u);
}

// ------------------------- record sample sort (multi-word, key extractor)

// Flatten record slabs and return records sorted by their key prefix
// (stable), as the reference ordering.
std::vector<std::vector<Word>> reference_record_sort(
    const std::vector<std::vector<Word>>& slabs, std::size_t width,
    std::size_t key_words) {
  std::vector<std::vector<Word>> records;
  for (const auto& slab : slabs)
    for (std::size_t off = 0; off + width <= slab.size(); off += width)
      records.emplace_back(slab.begin() + off, slab.begin() + off + width);
  std::stable_sort(records.begin(), records.end(),
                   [&](const std::vector<Word>& a, const std::vector<Word>& b) {
                     return std::lexicographical_compare(
                         a.begin(), a.begin() + key_words, b.begin(),
                         b.begin() + key_words);
                   });
  return records;
}

TEST(RecordSampleSort, SortsMultiWordRecordsByKeyPrefix) {
  const ClusterConfig cfg{4, 4096};
  Cluster cluster(cfg, nullptr);
  // Records of 3 words: (key_hi, key_lo, payload); key_words = 2.
  util::SplitRng rng(5);
  std::vector<std::vector<Word>> input(4);
  std::size_t payload = 0;
  for (auto& slab : input)
    for (int r = 0; r < 12; ++r) {
      slab.push_back(rng.next_below(4));      // key_hi: many duplicates
      slab.push_back(rng.next_below(1 << 10));
      slab.push_back(payload++);
    }
  const RecordSortResult result =
      sample_sort_records(cluster, input, 3, /*key_words=*/2);
  EXPECT_EQ(result.rounds, 7u);

  std::vector<std::vector<Word>> out;
  for (const auto& slab : result.slabs)
    for (std::size_t off = 0; off + 3 <= slab.size(); off += 3)
      out.emplace_back(slab.begin() + off, slab.begin() + off + 3);
  ASSERT_EQ(out.size(), 48u);
  // Global key order across machine slabs; payloads intact as a set.
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_FALSE(std::lexicographical_compare(out[i].begin(),
                                              out[i].begin() + 2,
                                              out[i - 1].begin(),
                                              out[i - 1].begin() + 2))
        << "record " << i << " out of key order";
  std::vector<Word> payloads;
  for (const auto& rec : out) payloads.push_back(rec[2]);
  std::sort(payloads.begin(), payloads.end());
  for (std::size_t i = 0; i < payloads.size(); ++i) EXPECT_EQ(payloads[i], i);
}

// With the whole record as the key and distinct records, the result is the
// unique total order — identical to the central reference sort.
TEST(RecordSampleSort, FullRecordKeyMatchesReferenceExactly) {
  const ClusterConfig cfg{8, 8192};
  Cluster cluster(cfg, nullptr);
  util::SplitRng rng(9);
  std::vector<std::vector<Word>> input(8);
  std::size_t idx = 0;
  for (auto& slab : input)
    for (int r = 0; r < 20; ++r) {
      slab.push_back(rng.next_below(16));  // heavily duplicated key word
      slab.push_back(idx++);               // distinct tiebreaker
    }
  const RecordSortResult result = sample_sort_records(cluster, input, 2);
  const auto expected = reference_record_sort(input, 2, 2);
  std::vector<std::vector<Word>> out;
  for (const auto& slab : result.slabs)
    for (std::size_t off = 0; off + 2 <= slab.size(); off += 2)
      out.emplace_back(slab.begin() + off, slab.begin() + off + 2);
  EXPECT_EQ(out, expected);
}

TEST(RecordSampleSort, SingleMachineAndTinySlabs) {
  const ClusterConfig cfg{1, 256};
  Cluster cluster(cfg, nullptr);
  const std::vector<std::vector<Word>> input{{5, 1, 2, 2, 5, 3}};
  const RecordSortResult result = sample_sort_records(cluster, input, 2, 1);
  ASSERT_EQ(result.slabs.size(), 1u);
  EXPECT_EQ(result.slabs[0], (std::vector<Word>{2, 2, 5, 1, 5, 3}));
  EXPECT_EQ(result.rounds, 7u);
}

TEST(RecordSampleSort, AllSlabsEmpty) {
  const ClusterConfig cfg{3, 64};
  Cluster cluster(cfg, nullptr);
  const RecordSortResult result =
      sample_sort_records(cluster, std::vector<std::vector<Word>>(3), 4);
  for (const auto& slab : result.slabs) EXPECT_TRUE(slab.empty());
  EXPECT_EQ(result.rounds, 7u);
}

// Coordinator strategy keeps its legacy 4-round shape and, with a
// full-record key, produces the identical unique total order as the tree.
TEST(RecordSampleSort, CoordinatorStrategyABaseline) {
  const ClusterConfig cfg{8, 8192};
  util::SplitRng rng(19);
  std::vector<std::vector<Word>> input(8);
  std::size_t idx = 0;
  for (auto& slab : input)
    for (int r = 0; r < 20; ++r) {
      slab.push_back(rng.next_below(16));
      slab.push_back(idx++);
    }
  Cluster tree_cluster(cfg, nullptr);
  const RecordSortResult tree = sample_sort_records(tree_cluster, input, 2);
  Cluster central_cluster(cfg, nullptr);
  const RecordSortResult central = sample_sort_records(
      central_cluster, input, 2, 0, 8, SplitterStrategy::kCoordinator);
  EXPECT_EQ(tree.rounds, 7u);
  EXPECT_EQ(central.rounds, 4u);
  std::vector<Word> tree_flat;
  for (const auto& slab : tree.slabs)
    tree_flat.insert(tree_flat.end(), slab.begin(), slab.end());
  std::vector<Word> central_flat;
  for (const auto& slab : central.slabs)
    central_flat.insert(central_flat.end(), slab.begin(), slab.end());
  EXPECT_EQ(tree_flat, central_flat);
}

// The bulk send_records route (route_aggregation, default on) is a pure
// speed knob: outputs AND ledger totals must be bit-identical to the
// per-record fallback, for both splitter strategies, including the
// all-duplicate-key input where every splitter collides.
TEST(RecordSampleSort, RouteAggregationOnOffBitIdentical) {
  util::SplitRng rng(23);
  std::vector<std::vector<Word>> input(8);
  std::size_t idx = 0;
  for (auto& slab : input)
    for (int r = 0; r < 24; ++r) {
      slab.push_back(rng.next_below(8));  // heavy duplication
      slab.push_back(idx++);
    }
  std::vector<std::vector<Word>> all_dup(8);
  for (auto& slab : all_dup)
    for (int r = 0; r < 16; ++r) {
      slab.push_back(42);
      slab.push_back(idx++);
    }

  for (const auto* slabs : {&input, &all_dup}) {
    for (const SplitterStrategy strategy :
         {SplitterStrategy::kTree, SplitterStrategy::kCoordinator}) {
      ClusterConfig cfg{8, 8192};
      cfg.route_aggregation = true;
      RoundLedger on_ledger(cfg);
      Cluster on_cluster(cfg, &on_ledger);
      const RecordSortResult on =
          sample_sort_records(on_cluster, *slabs, 2, 2, 8, strategy);

      cfg.route_aggregation = false;
      RoundLedger off_ledger(cfg);
      Cluster off_cluster(cfg, &off_ledger);
      const RecordSortResult off =
          sample_sort_records(off_cluster, *slabs, 2, 2, 8, strategy);

      EXPECT_EQ(on.slabs, off.slabs);
      EXPECT_EQ(on.rounds, off.rounds);
      EXPECT_EQ(on_ledger.total_rounds(), off_ledger.total_rounds());
      EXPECT_EQ(on_ledger.traffic_words_by_label(),
                off_ledger.traffic_words_by_label());
      EXPECT_EQ(on_ledger.peak_round_traffic(),
                off_ledger.peak_round_traffic());
    }
  }
}

// Same equivalence for the word sort (width-1 records through the same
// route rounds, buckets read off the final inboxes).
TEST(SampleSort, RouteAggregationOnOffBitIdentical) {
  const auto input = random_slabs(16, 48, 29);
  ClusterConfig cfg{16, 1024};
  cfg.route_aggregation = true;
  Cluster on_cluster(cfg, nullptr);
  const SampleSortResult on = sample_sort(on_cluster, input);
  cfg.route_aggregation = false;
  Cluster off_cluster(cfg, nullptr);
  const SampleSortResult off = sample_sort(off_cluster, input);
  EXPECT_EQ(on.slabs, off.slabs);
  EXPECT_EQ(on.rounds, off.rounds);
}

// The merge path (k-way merge of sorted inbox runs, default on) is the
// same kind of pure speed knob: sample pools at relays/root/coordinator
// and the final bucket slabs must be bit-identical to the re-sort
// fallback — outputs, rounds, AND ledger totals — across both splitter
// strategies and both route-aggregation settings (the bucket-round merge
// gates on aggregation; the pool merges do not).
TEST(RecordSampleSort, MergePathOnOffBitIdentical) {
  util::SplitRng rng(33);
  std::vector<std::vector<Word>> input(8);
  std::size_t idx = 0;
  for (auto& slab : input)
    for (int r = 0; r < 24; ++r) {
      slab.push_back(rng.next_below(8));  // splitter-colliding duplicates
      slab.push_back(idx++);
    }

  for (const bool aggregate : {true, false}) {
    for (const SplitterStrategy strategy :
         {SplitterStrategy::kTree, SplitterStrategy::kCoordinator}) {
      ClusterConfig cfg{8, 8192};
      cfg.route_aggregation = aggregate;
      cfg.merge_path = true;
      RoundLedger on_ledger(cfg);
      Cluster on_cluster(cfg, &on_ledger);
      const RecordSortResult on =
          sample_sort_records(on_cluster, input, 2, 2, 8, strategy);

      cfg.merge_path = false;
      RoundLedger off_ledger(cfg);
      Cluster off_cluster(cfg, &off_ledger);
      const RecordSortResult off =
          sample_sort_records(off_cluster, input, 2, 2, 8, strategy);

      EXPECT_EQ(on.slabs, off.slabs);
      EXPECT_EQ(on.rounds, off.rounds);
      EXPECT_EQ(on_ledger.total_rounds(), off_ledger.total_rounds());
      EXPECT_EQ(on_ledger.traffic_words_by_label(),
                off_ledger.traffic_words_by_label());
      EXPECT_EQ(on_ledger.peak_round_traffic(),
                off_ledger.peak_round_traffic());
    }
  }
}

TEST(SampleSort, MergePathOnOffBitIdentical) {
  const auto input = random_slabs(16, 48, 34);
  for (const bool aggregate : {true, false}) {
    ClusterConfig cfg{16, 1024};
    cfg.route_aggregation = aggregate;
    cfg.merge_path = true;
    Cluster on_cluster(cfg, nullptr);
    const SampleSortResult on = sample_sort(on_cluster, input);
    cfg.merge_path = false;
    Cluster off_cluster(cfg, nullptr);
    const SampleSortResult off = sample_sort(off_cluster, input);
    EXPECT_EQ(on.slabs, off.slabs);
    EXPECT_EQ(on.rounds, off.rounds);
  }
}

// The fetch cache (delegate-style read memo, default on) must never change
// what a program sends: peeling layers and broadcast copies are
// bit-identical with the cache disabled, along with every ledger total.
TEST(EmbeddedPeeling, FetchCacheOnOffBitIdentical) {
  util::SplitRng rng(35);
  const graph::Graph g = graph::gnm(300, 900, rng);
  ClusterConfig cfg{8, 4096};
  cfg.fetch_cache = true;
  RoundLedger on_ledger(cfg);
  Cluster on_cluster(cfg, &on_ledger);
  const auto on = local::embedded_threshold_peeling(g, 6, on_cluster, 100);

  cfg.fetch_cache = false;
  RoundLedger off_ledger(cfg);
  Cluster off_cluster(cfg, &off_ledger);
  const auto off = local::embedded_threshold_peeling(g, 6, off_cluster, 100);

  EXPECT_EQ(on.layer, off.layer);
  EXPECT_EQ(on.num_layers, off.num_layers);
  EXPECT_EQ(on.complete, off.complete);
  EXPECT_EQ(on_ledger.total_rounds(), off_ledger.total_rounds());
  EXPECT_EQ(on_ledger.traffic_words_by_label(),
            off_ledger.traffic_words_by_label());
  EXPECT_EQ(on_ledger.peak_round_traffic(), off_ledger.peak_round_traffic());
}

TEST(Broadcast, FetchCacheOnOffBitIdentical) {
  ClusterConfig cfg{8, 4096};
  cfg.fetch_cache = true;
  Cluster on_cluster(cfg, nullptr);
  const BroadcastResult on = broadcast_tree(on_cluster, 3, {7, 8, 9}, 2);
  cfg.fetch_cache = false;
  Cluster off_cluster(cfg, nullptr);
  const BroadcastResult off = broadcast_tree(off_cluster, 3, {7, 8, 9}, 2);
  EXPECT_EQ(on.copies, off.copies);
  EXPECT_EQ(on.rounds, off.rounds);
}

TEST(RecordSampleSort, RejectsRaggedArena) {
  const ClusterConfig cfg{2, 64};
  Cluster cluster(cfg, nullptr);
  EXPECT_THROW(
      sample_sort_records(cluster, {{1, 2, 3}, {}}, /*record_width=*/2),
      arbor::InvariantError);
}

// ------------------------ S-cap grounding of the splitter relay tree
//
// The point of the tree: the per-machine traffic of every splitter round
// is O(√p·s) words (s = samples per machine), where the coordinator
// pattern pooled Θ(p·s) at machine 0 and broadcast Θ(p²). Grounded with
// the ledger's per-label traffic peaks at p = 256 and p = 400 — machine
// counts where the coordinator's splitter rounds cannot even run under
// the same per-machine budget.
TEST(SampleSortTree, SplitterRoundsStayWithinSqrtPBudget) {
  for (const std::size_t machines : {256u, 400u}) {
    const std::size_t samples = 32;
    std::size_t r = 1;  // ⌈√p⌉
    while (r * r < machines) ++r;
    ASSERT_LE(r, samples);  // tree premise: s ≥ ⌈√p⌉
    const ClusterConfig cfg{machines, 4096};
    RoundLedger ledger(cfg);
    Cluster cluster(cfg, &ledger);
    const auto input = random_slabs(machines, 48, machines);
    const SampleSortResult result = sample_sort(cluster, input, samples);
    std::vector<Word> out;
    for (const auto& slab : result.slabs)
      out.insert(out.end(), slab.begin(), slab.end());
    EXPECT_EQ(out, flatten_sorted(input)) << "p=" << machines;

    // Every splitter round ≤ 4·√p·s words per machine; the coordinator's
    // sample pool alone is p·s — asymptotically √p/4 times larger.
    const std::size_t budget = 4 * r * samples;
    EXPECT_LT(budget, machines * samples);
    const auto& peaks = ledger.peak_traffic_by_label();
    for (const char* label :
         {"sample_sort.tree.up", "sample_sort.tree.pick",
          "sample_sort.tree.down"}) {
      ASSERT_TRUE(peaks.count(label)) << label << " p=" << machines;
      EXPECT_LE(peaks.at(label), budget) << label << " p=" << machines;
    }

    // The coordinator strategy trips the very first splitter round under
    // the same per-machine budget: machine 0 would have to receive p·s
    // sample words.
    Cluster central(cfg, nullptr);
    EXPECT_THROW(
        sample_sort(central, input, samples, SplitterStrategy::kCoordinator),
        arbor::InvariantError);
  }
}

// A receive-cap violation in a splitter round names the tree round and
// the machine, so an overloaded relay is diagnosable from the error text
// alone.
TEST(SampleSortTree, CapViolationNamesTreeRoundAndMachine) {
  // Capacity of 64 words: the relays' pooled samples (up to 16·32·1 = 512
  // words at r = 16) overflow during the fan-in round.
  const ClusterConfig cfg{256, 64};
  Cluster cluster(cfg, nullptr);
  const auto input = random_slabs(256, 48, 9);
  try {
    sample_sort(cluster, input, 32);
    FAIL() << "expected a receive-cap violation in the splitter rounds";
  } catch (const arbor::InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sample_sort.tree."), std::string::npos) << what;
    EXPECT_NE(what.find("exceeded receive capacity"), std::string::npos)
        << what;
    EXPECT_NE(what.find("machine "), std::string::npos) << what;
  }
}

// Adversarial inputs at p ≥ 64: all-duplicate keys (every record lands in
// one bucket), heavy source skew (all data on three machines), and a
// duplicate-key record sort whose full-record key must still reproduce
// the unique total order.
TEST(SampleSortTree, AdversarialDuplicatesAndSkewAtWideClusters) {
  const std::size_t machines = 64;
  const ClusterConfig cfg{machines, 8192};

  std::vector<std::vector<Word>> dup(machines, std::vector<Word>(24, 42));
  Cluster c1(cfg, nullptr);
  const SampleSortResult r1 = sample_sort(c1, dup);
  std::vector<Word> out1;
  for (const auto& slab : r1.slabs)
    out1.insert(out1.end(), slab.begin(), slab.end());
  EXPECT_EQ(out1, flatten_sorted(dup));

  util::SplitRng rng(88);
  std::vector<std::vector<Word>> skew(machines);
  for (const std::size_t m : {61u, 62u, 63u})
    for (int i = 0; i < 300; ++i)
      skew[m].push_back(rng.next_below(1u << 30));
  Cluster c2(cfg, nullptr);
  const SampleSortResult r2 = sample_sort(c2, skew);
  std::vector<Word> out2;
  for (const auto& slab : r2.slabs)
    out2.insert(out2.end(), slab.begin(), slab.end());
  EXPECT_EQ(out2, flatten_sorted(skew));

  std::vector<std::vector<Word>> records(machines);
  std::size_t idx = 0;
  for (auto& slab : records)
    for (int i = 0; i < 12; ++i) {
      slab.push_back(rng.next_below(4));  // 4 distinct keys across 768 recs
      slab.push_back(idx++);
    }
  Cluster c3(cfg, nullptr);
  const RecordSortResult r3 = sample_sort_records(c3, records, 2);
  const auto expected = reference_record_sort(records, 2, 2);
  std::vector<std::vector<Word>> out3;
  for (const auto& slab : r3.slabs)
    for (std::size_t off = 0; off + 2 <= slab.size(); off += 2)
      out3.emplace_back(slab.begin() + off, slab.begin() + off + 2);
  EXPECT_EQ(out3, expected);
}

TEST(BroadcastTree, AllMachinesReceive) {
  const ClusterConfig cfg{13, 256};
  Cluster cluster(cfg, nullptr);
  const std::vector<Word> payload{1, 2, 3};
  const BroadcastResult result = broadcast_tree(cluster, 4, payload, 3);
  for (std::size_t m = 0; m < 13; ++m)
    EXPECT_EQ(result.copies[m], payload) << "machine " << m;
}

TEST(BroadcastTree, RoundsLogarithmicInFanout) {
  const ClusterConfig cfg{64, 1024};
  Cluster cluster(cfg, nullptr);
  const BroadcastResult result = broadcast_tree(cluster, 0, {7}, 4);
  // ⌈log_4 64⌉ = 3 levels of the tree.
  EXPECT_LE(result.rounds, 4u);
  EXPECT_GE(result.rounds, 3u);

  // Cross-check the Level-1 analytic formula (fanout ~ √S = 32 → 2 rounds
  // for 64 copies; our Level-0 run with the narrower fanout 4 may use
  // more rounds but stays O(log)).
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  EXPECT_LE(ctx.broadcast_rounds(64), result.rounds + 2);
}

TEST(BroadcastTree, PayloadCapacityEnforced) {
  const ClusterConfig cfg{4, 8};
  Cluster cluster(cfg, nullptr);
  // Payload of 5 words × fanout 2 = 10 > 8 send budget: must throw.
  EXPECT_THROW(broadcast_tree(cluster, 0, {1, 2, 3, 4, 5}, 2),
               arbor::InvariantError);
}

TEST(ConvergeSum, SumsToRoot) {
  const ClusterConfig cfg{10, 256};
  Cluster cluster(cfg, nullptr);
  std::vector<Word> values(10);
  Word expected = 0;
  for (std::size_t m = 0; m < 10; ++m) {
    values[m] = m * m + 1;
    expected += values[m];
  }
  const ConvergeResult result = converge_sum(cluster, 3, values, 3);
  EXPECT_EQ(result.sum, expected);
}

TEST(ConvergeSum, SingleMachine) {
  const ClusterConfig cfg{1, 64};
  Cluster cluster(cfg, nullptr);
  const ConvergeResult result = converge_sum(cluster, 0, {99}, 2);
  EXPECT_EQ(result.sum, 99u);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(ConvergeSum, MatchesBroadcastDepth) {
  const ClusterConfig cfg{40, 256};
  Cluster cluster(cfg, nullptr);
  std::vector<Word> ones(40, 1);
  const ConvergeResult result = converge_sum(cluster, 0, ones, 3);
  EXPECT_EQ(result.sum, 40u);
  EXPECT_LE(result.rounds, 5u);  // ⌈log_3 40⌉ + 1
}

// ----------------------------- Level-0 bundle fetch as a RoundProgram

TEST(BundleFetchProgram, MatchesAnalyticDelivery) {
  std::vector<std::vector<Word>> bundles{{10}, {20, 21}, {30}, {}, {40, 41,
                                                                    42}};
  std::vector<std::vector<graph::VertexId>> requests{
      {1, 2}, {}, {0, 0, 4}, {3}};

  const ClusterConfig cfg{4, 1024};
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  const BundleFetchResult analytic =
      fetch_bundles(ctx, bundles, requests, "fetch");

  Cluster cluster(cfg, nullptr);
  const Level0BundleFetchResult executed =
      fetch_bundles_program(cluster, bundles, requests);
  EXPECT_EQ(executed.rounds, 3u);
  EXPECT_EQ(executed.delivered, analytic.delivered);
}

TEST(BundleFetchProgram, RejectsUnknownVertex) {
  Cluster cluster(ClusterConfig{2, 64}, nullptr);
  std::vector<std::vector<Word>> bundles{{1}};
  std::vector<std::vector<graph::VertexId>> requests{{5}};
  EXPECT_THROW(fetch_bundles_program(cluster, bundles, requests),
               arbor::InvariantError);
}

// -------------------------- determinism matrix: policy × async overlap
//
// Every RoundProgram in the tree must produce identical outputs, inbox
// fingerprints, and ledger totals across {serial, parallel(4)} × {async
// on, off} — the async scheduler is an execution detail, never a
// semantics knob.

std::uint64_t matrix_fingerprint(const Cluster& cluster) {
  std::uint64_t h = util::mix64(0x12345);
  for (std::size_t m = 0; m < cluster.num_machines(); ++m) {
    for (const auto& msg : cluster.inbox(m)) {
      h = util::hash_combine(h, msg.size());
      for (Word w : msg) h = util::hash_combine(h, w);
    }
    h = util::hash_combine(h, m);
  }
  return h;
}

std::vector<ExecutionPolicy> determinism_matrix() {
  return {ExecutionPolicy::serial().with_async(false),
          ExecutionPolicy::serial().with_async(true),
          ExecutionPolicy::parallel(4).with_async(false),
          ExecutionPolicy::parallel(4).with_async(true)};
}

/// Ledger + inbox signature of one mode's run.
struct MatrixOutcome {
  std::uint64_t fingerprint = 0;
  std::size_t total_rounds = 0;
  std::size_t peak_traffic = 0;
  std::map<std::string, std::size_t> by_label;
};

template <typename RunFn>
void expect_matrix_identical(
    const char* what, const RunFn& run, std::size_t machines = 8,
    std::size_t capacity = 4096,
    const std::function<void(ClusterConfig&)>& configure = {}) {
  std::vector<MatrixOutcome> outcomes;
  for (const ExecutionPolicy& policy : determinism_matrix()) {
    ClusterConfig cfg{machines, capacity};
    cfg.execution = policy;
    if (configure) configure(cfg);
    RoundLedger ledger(cfg);
    Cluster cluster(cfg, &ledger);
    run(cluster, outcomes.empty());
    MatrixOutcome outcome;
    outcome.fingerprint = matrix_fingerprint(cluster);
    outcome.total_rounds = ledger.total_rounds();
    outcome.peak_traffic = ledger.peak_round_traffic();
    outcome.by_label = ledger.rounds_by_label();
    outcomes.push_back(outcome);
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].fingerprint, outcomes[0].fingerprint)
        << what << " mode " << i;
    EXPECT_EQ(outcomes[i].total_rounds, outcomes[0].total_rounds)
        << what << " mode " << i;
    EXPECT_EQ(outcomes[i].peak_traffic, outcomes[0].peak_traffic)
        << what << " mode " << i;
    EXPECT_EQ(outcomes[i].by_label, outcomes[0].by_label)
        << what << " mode " << i;
  }
}

TEST(DeterminismMatrix, SampleSort) {
  const auto input = random_slabs(8, 48, 21);
  std::vector<std::vector<Word>> reference;
  expect_matrix_identical("sample_sort", [&](Cluster& cluster, bool first) {
    const SampleSortResult result = sample_sort(cluster, input);
    if (first)
      reference = result.slabs;
    else
      EXPECT_EQ(result.slabs, reference);
  });
}

TEST(DeterminismMatrix, RecordSampleSort) {
  util::SplitRng rng(22);
  std::vector<std::vector<Word>> input(8);
  std::size_t payload = 0;
  for (auto& slab : input)
    for (int r = 0; r < 24; ++r) {
      slab.push_back(rng.next_below(8));  // heavily duplicated key
      slab.push_back(payload++);
    }
  std::vector<std::vector<Word>> reference;
  expect_matrix_identical(
      "sample_sort_records", [&](Cluster& cluster, bool first) {
        const RecordSortResult result =
            sample_sort_records(cluster, input, 2, 1);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      });
}

// Both splitter strategies are locked across the matrix — the tree above
// (the default), the coordinator here (the A/B baseline) — and the tree
// also at a wide, non-perfect-square machine count where its topology is
// ragged.
TEST(DeterminismMatrix, SampleSortCoordinatorStrategy) {
  const auto input = random_slabs(8, 48, 25);
  std::vector<std::vector<Word>> reference;
  expect_matrix_identical(
      "sample_sort/coordinator", [&](Cluster& cluster, bool first) {
        const SampleSortResult result =
            sample_sort(cluster, input, 8, SplitterStrategy::kCoordinator);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      });
}

TEST(DeterminismMatrix, WideTreeSampleSort) {
  const std::size_t machines = 75;  // r = 9, ragged last group of 3
  const auto input = random_slabs(machines, 40, 26);
  std::vector<std::vector<Word>> reference;
  expect_matrix_identical(
      "sample_sort/tree-wide",
      [&](Cluster& cluster, bool first) {
        const SampleSortResult result = sample_sort(cluster, input);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      },
      machines, 8192);
}

TEST(DeterminismMatrix, RecordSampleSortCoordinatorStrategy) {
  util::SplitRng rng(27);
  std::vector<std::vector<Word>> input(8);
  std::size_t payload = 0;
  for (auto& slab : input)
    for (int r = 0; r < 24; ++r) {
      slab.push_back(rng.next_below(8));
      slab.push_back(payload++);
    }
  std::vector<std::vector<Word>> reference;
  expect_matrix_identical(
      "sample_sort_records/coordinator", [&](Cluster& cluster, bool first) {
        const RecordSortResult result = sample_sort_records(
            cluster, input, 2, 1, 8, SplitterStrategy::kCoordinator);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      });
}

TEST(DeterminismMatrix, BroadcastAndConverge) {
  std::vector<std::vector<Word>> reference_copies;
  expect_matrix_identical("broadcast", [&](Cluster& cluster, bool first) {
    const BroadcastResult result =
        broadcast_tree(cluster, 3, {7, 8, 9}, 2);
    if (first)
      reference_copies = result.copies;
    else
      EXPECT_EQ(result.copies, reference_copies);
  });
  expect_matrix_identical("converge", [&](Cluster& cluster, bool) {
    std::vector<Word> values(cluster.num_machines());
    for (std::size_t m = 0; m < values.size(); ++m) values[m] = m * 3 + 1;
    const ConvergeResult result = converge_sum(cluster, 2, values, 2);
    EXPECT_EQ(result.sum, 92u);  // Σ (3m+1) for m < 8
  });
}

TEST(DeterminismMatrix, BundleFetch) {
  std::vector<std::vector<Word>> bundles(12);
  std::vector<std::vector<graph::VertexId>> requests(12);
  util::SplitRng rng(23);
  for (std::size_t v = 0; v < bundles.size(); ++v)
    for (std::size_t i = 0; i <= rng.next_below(3); ++i)
      bundles[v].push_back(v * 100 + i);
  for (std::size_t u = 0; u < requests.size(); ++u)
    for (std::size_t i = 0; i < rng.next_below(4); ++i)
      requests[u].push_back(rng.next_below(bundles.size()));
  std::vector<std::vector<std::vector<Word>>> reference;
  expect_matrix_identical("bundle_fetch", [&](Cluster& cluster, bool first) {
    const Level0BundleFetchResult result =
        fetch_bundles_program(cluster, bundles, requests);
    if (first)
      reference = result.delivered;
    else
      EXPECT_EQ(result.delivered, reference);
  });
}

// Regression: programs folded the old "driver reads inboxes after the
// round" logic into their first step, which must therefore ignore whatever
// stale traffic the cluster's previous program left undelivered. Peeling
// after a broadcast (whose deepest level's copies remain in the inboxes)
// must behave exactly like peeling on a fresh cluster.
TEST(RoundProgramReuse, StaleInboxesDoNotLeakIntoNextProgram) {
  util::SplitRng rng(31);
  const graph::Graph g = graph::gnm(120, 360, rng);
  const ClusterConfig cfg{8, 4096};

  Cluster fresh(cfg, nullptr);
  const auto expected = local::embedded_threshold_peeling(g, 5, fresh, 50);

  Cluster reused(cfg, nullptr);
  broadcast_tree(reused, 0, {1000, 2000, 3000}, 2);  // leaves inbox traffic
  const auto after = local::embedded_threshold_peeling(g, 5, reused, 50);
  EXPECT_EQ(after.layer, expected.layer);
  EXPECT_EQ(after.num_layers, expected.num_layers);
  EXPECT_EQ(after.complete, expected.complete);

  // Back-to-back trees on one cluster: the second broadcast must also
  // ignore the first one's leftovers.
  Cluster chained(cfg, nullptr);
  broadcast_tree(chained, 0, {11, 22}, 2);
  const auto second = broadcast_tree(chained, 5, {77}, 2);
  for (std::size_t m = 0; m < cfg.num_machines; ++m)
    EXPECT_EQ(second.copies[m], (std::vector<Word>{77})) << "machine " << m;
}

TEST(DeterminismMatrix, EmbeddedPeeling) {
  util::SplitRng rng(24);
  const graph::Graph g = graph::gnm(300, 900, rng);
  std::vector<std::uint32_t> reference_layers;
  expect_matrix_identical("peeling", [&](Cluster& cluster, bool first) {
    const local::EmbeddedPeelingResult result =
        local::embedded_threshold_peeling(g, 6, cluster, 100);
    if (first)
      reference_layers = result.layer;
    else
      EXPECT_EQ(result.layer, reference_layers);
  });
}

// The fallback paths are locked across the same matrix as the defaults:
// the re-sort baseline (merge_path off) and the uncached fetch path
// (fetch_cache off) must be every bit as policy/async-independent — the
// A/B comparisons above are only meaningful if both arms are
// deterministic.
TEST(DeterminismMatrix, RecordSampleSortMergePathOff) {
  util::SplitRng rng(28);
  std::vector<std::vector<Word>> input(8);
  std::size_t payload = 0;
  for (auto& slab : input)
    for (int r = 0; r < 24; ++r) {
      slab.push_back(rng.next_below(8));
      slab.push_back(payload++);
    }
  std::vector<std::vector<Word>> reference;
  expect_matrix_identical(
      "sample_sort_records/no-merge-path",
      [&](Cluster& cluster, bool first) {
        const RecordSortResult result =
            sample_sort_records(cluster, input, 2, 1);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      },
      8, 4096, [](ClusterConfig& cfg) { cfg.merge_path = false; });
}

TEST(DeterminismMatrix, EmbeddedPeelingFetchCacheOff) {
  util::SplitRng rng(29);
  const graph::Graph g = graph::gnm(300, 900, rng);
  std::vector<std::uint32_t> reference_layers;
  expect_matrix_identical(
      "peeling/no-fetch-cache",
      [&](Cluster& cluster, bool first) {
        const local::EmbeddedPeelingResult result =
            local::embedded_threshold_peeling(g, 6, cluster, 100);
        if (first)
          reference_layers = result.layer;
        else
          EXPECT_EQ(result.layer, reference_layers);
      },
      8, 4096, [](ClusterConfig& cfg) { cfg.fetch_cache = false; });
}

}  // namespace
}  // namespace arbor::mpc
