// Central-vs-distributed Level-1 equivalence: with
// ClusterConfig::distributed_level1 the keyed primitives execute as real
// engine-backed sample sorts, and everything downstream — pipeline outputs
// AND ledger round totals — must be bit-identical to the central reference
// path, under both the serial executor and parallel(4).
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "core/coloring_mpc.hpp"
#include "core/layering_pipeline.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/generators.hpp"
#include "mpc/ledger.hpp"
#include "mpc/primitives.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace arbor {
namespace {

using mpc::ClusterConfig;
using mpc::MpcContext;
using mpc::RoundLedger;
using mpc::Word;

ClusterConfig config_for(const graph::Graph& g, bool distributed,
                         engine::ExecutionPolicy policy = {}) {
  ClusterConfig cfg =
      ClusterConfig::for_problem(g.num_vertices(), g.num_edges(), 0.6);
  cfg.distributed_level1 = distributed;
  cfg.execution = policy;
  return cfg;
}

void expect_ledgers_identical(const RoundLedger& a, const RoundLedger& b) {
  EXPECT_EQ(a.total_rounds(), b.total_rounds());
  EXPECT_EQ(a.rounds_by_label(), b.rounds_by_label());
  EXPECT_EQ(a.peak_local_words(), b.peak_local_words());
  EXPECT_EQ(a.peak_global_words(), b.peak_global_words());
  EXPECT_EQ(a.peak_round_traffic(), b.peak_round_traffic());
  EXPECT_EQ(a.local_violations(), b.local_violations());
}

// ------------------------------------------------------------- primitives

TEST(DistributedSort, MatchesCentralStableSortIncludingTies) {
  util::SplitRng rng(41);
  // Heavily duplicated keys: stability is the hard part.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> items;
  for (std::size_t i = 0; i < 20000; ++i)
    items.emplace_back(static_cast<std::uint32_t>(rng.next_below(64)), i);

  auto central = items;
  ClusterConfig cfg{64, 4096};
  cfg.distributed_level1 = false;
  RoundLedger central_ledger(cfg);
  MpcContext central_ctx(cfg, &central_ledger);
  central_ctx.sort_items_by_key(
      central, [](const auto& kv) { return MpcContext::word_key(kv.first); },
      2, "sort");

  for (const bool parallel : {false, true}) {
    auto distributed = items;
    ClusterConfig dcfg = cfg;
    dcfg.distributed_level1 = true;
    if (parallel) dcfg.execution = engine::ExecutionPolicy::parallel(4);
    RoundLedger ledger(dcfg);
    MpcContext ctx(dcfg, &ledger);
    ctx.sort_items_by_key(
        distributed,
        [](const auto& kv) { return MpcContext::word_key(kv.first); }, 2,
        "sort");
    EXPECT_EQ(distributed, central) << "parallel=" << parallel;
    expect_ledgers_identical(ledger, central_ledger);
  }
}

TEST(DistributedSort, SignedKeysOrderPreserved) {
  std::vector<int> items{5, -3, 0, -3, 17, -100, 5};
  ClusterConfig cfg{8, 1024};
  cfg.distributed_level1 = true;
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  ctx.sort_items_by_key(
      items, [](int v) { return MpcContext::word_key(v); }, 1, "sort");
  EXPECT_EQ(items, (std::vector<int>{-100, -3, -3, 0, 5, 5, 17}));
}

TEST(DistributedSort, SingleItemAndEmpty) {
  ClusterConfig cfg{4, 512};
  cfg.distributed_level1 = true;
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  std::vector<std::uint64_t> empty;
  ctx.sort_items_by_key(
      empty, [](std::uint64_t v) { return v; }, 1, "sort");
  EXPECT_TRUE(empty.empty());
  std::vector<std::uint64_t> one{7};
  ctx.sort_items_by_key(one, [](std::uint64_t v) { return v; }, 1, "sort");
  EXPECT_EQ(one, (std::vector<std::uint64_t>{7}));
}

TEST(DistributedAggregate, MatchesCentral) {
  util::SplitRng rng(7);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> items;
  for (std::size_t i = 0; i < 5000; ++i)
    items.emplace_back(static_cast<std::uint32_t>(rng.next_below(100)),
                       rng.next_below(1000));
  const auto combine = [](std::uint64_t a, std::uint64_t b) { return a + b; };

  ClusterConfig cfg{64, 4096};
  cfg.distributed_level1 = false;
  RoundLedger central_ledger(cfg);
  MpcContext central_ctx(cfg, &central_ledger);
  const auto central = central_ctx.aggregate_by_key<std::uint32_t,
                                                    std::uint64_t>(
      items, combine, 2, "agg");

  ClusterConfig dcfg = cfg;
  dcfg.distributed_level1 = true;
  RoundLedger ledger(dcfg);
  MpcContext ctx(dcfg, &ledger);
  const auto distributed =
      ctx.aggregate_by_key<std::uint32_t, std::uint64_t>(items, combine, 2,
                                                         "agg");
  EXPECT_EQ(distributed, central);
  expect_ledgers_identical(ledger, central_ledger);
}

TEST(DistributedCount, MatchesCentral) {
  util::SplitRng rng(13);
  std::vector<std::uint32_t> keys;
  for (std::size_t i = 0; i < 3000; ++i)
    keys.push_back(static_cast<std::uint32_t>(rng.next_below(40)));

  ClusterConfig cfg{32, 2048};
  cfg.distributed_level1 = false;
  RoundLedger central_ledger(cfg);
  MpcContext central_ctx(cfg, &central_ledger);
  const auto central = central_ctx.count_by_key<std::uint32_t>(keys, "count");

  ClusterConfig dcfg = cfg;
  dcfg.distributed_level1 = true;
  RoundLedger ledger(dcfg);
  MpcContext ctx(dcfg, &ledger);
  const auto distributed = ctx.count_by_key<std::uint32_t>(keys, "count");
  EXPECT_EQ(distributed, central);
  expect_ledgers_identical(ledger, central_ledger);
}

// The internal sort cluster is no longer an unledgered execution vehicle:
// its real rounds are charged to the context's model-shaped grounding
// ledger under the splitter-tree step labels, and the executed dataflow
// honours the model's S-cap (no violations, peak traffic ≤ S) — while the
// primary ledger keeps the analytic charge, bit-identical to central
// (asserted by every expect_ledgers_identical above).
TEST(DistributedSort, InternalSortChargedToModelShapedGroundingLedger) {
  util::SplitRng rng(51);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> items;
  for (std::size_t i = 0; i < 20000; ++i)
    items.emplace_back(static_cast<std::uint32_t>(rng.next_below(512)), i);

  ClusterConfig cfg{64, 4096};
  cfg.distributed_level1 = true;
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  ctx.sort_items_by_key(
      items, [](const auto& kv) { return MpcContext::word_key(kv.first); },
      2, "sort");

  RoundLedger* grounding = ctx.level1_sort_grounding();
  // One tree record sort: 2 up + 1 pick + 1 down + 2 route + 1 bucket sort.
  EXPECT_EQ(grounding->total_rounds(), 7u);
  const auto& labels = grounding->rounds_by_label();
  EXPECT_EQ(labels.at("sample_sort.tree.up"), 2u);
  EXPECT_EQ(labels.at("sample_sort.tree.pick"), 1u);
  EXPECT_EQ(labels.at("sample_sort.tree.down"), 1u);
  EXPECT_EQ(labels.at("sample_sort.tree.route"), 2u);
  EXPECT_EQ(labels.at("sample_sort.tree.sort"), 1u);
  // Under the model's S-cap, not a widened one.
  EXPECT_EQ(grounding->local_violations(), 0u);
  EXPECT_LE(grounding->peak_round_traffic(), cfg.words_per_machine);
  EXPECT_GT(grounding->peak_round_traffic(), 0u);
  // The splitter rounds are far below the cap (they are O(√p·s) words).
  const auto& peaks = grounding->peak_traffic_by_label();
  EXPECT_LE(peaks.at("sample_sort.tree.pick"), cfg.words_per_machine / 4);
}

// The distributed Level-1 sorts also run over the multi-process transport:
// the context pools an internal sort cluster with its own worker group
// (machine counts are data-dependent, so the shared engine's backend
// cannot serve them) and stays bit-identical to the central path.
TEST(DistributedSort, MatchesCentralOverLoopbackTransport) {
  util::SplitRng rng(52);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> items;
  for (std::size_t i = 0; i < 20000; ++i)
    items.emplace_back(static_cast<std::uint32_t>(rng.next_below(64)), i);

  auto central = items;
  ClusterConfig cfg{64, 4096};
  cfg.distributed_level1 = false;
  cfg.transport = mpc::TransportConfig{};
  RoundLedger central_ledger(cfg);
  MpcContext central_ctx(cfg, &central_ledger);
  central_ctx.sort_items_by_key(
      central, [](const auto& kv) { return MpcContext::word_key(kv.first); },
      2, "sort");

  auto distributed = items;
  ClusterConfig dcfg = cfg;
  dcfg.distributed_level1 = true;
  dcfg.transport = mpc::TransportConfig::loopback(2);
  RoundLedger ledger(dcfg);
  MpcContext ctx(dcfg, &ledger);
  ctx.sort_items_by_key(
      distributed,
      [](const auto& kv) { return MpcContext::word_key(kv.first); }, 2,
      "sort");
  EXPECT_EQ(distributed, central);
  expect_ledgers_identical(ledger, central_ledger);
  EXPECT_EQ(ctx.level1_sort_grounding()->total_rounds(), 7u);
}

// One MpcContext pools its internal sort clusters: the same Level-1 sort
// run 5× reuses the first sort's cluster — RoundState arenas at retained
// capacity (engine.arena_reuse_hits counts the reuses) and, over the
// loopback transport, one worker group for all five sorts
// (net.worker_groups_spawned stays at 1) — with bit-identical outputs
// every repetition.
TEST(DistributedSortPooling, ReusesArenasAndWorkerGroupAcrossSorts) {
  trace::Tracer& tracer = trace::Tracer::global();
  trace::ScopedMode guard(tracer, tracer.mode());
  tracer.clear();

  util::SplitRng rng(61);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> items;
  for (std::size_t i = 0; i < 20000; ++i)
    items.emplace_back(static_cast<std::uint32_t>(rng.next_below(64)), i);

  auto expected = items;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  ClusterConfig cfg{64, 4096};
  cfg.distributed_level1 = true;
  cfg.transport = mpc::TransportConfig::loopback(2);
  cfg.trace = trace::TraceConfig{trace::Mode::kFull, ""};
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  for (int rep = 0; rep < 5; ++rep) {
    auto sorted = items;
    ctx.sort_items_by_key(
        sorted, [](const auto& kv) { return MpcContext::word_key(kv.first); },
        2, "sort");
    EXPECT_EQ(sorted, expected) << "rep " << rep;
  }

  const auto hits = tracer.metrics().counter("engine.arena_reuse_hits");
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(*hits, 4u);  // sorts 2..5 hit the slot sort 1 created
  const auto spawns = tracer.metrics().counter("net.worker_groups_spawned");
  ASSERT_TRUE(spawns.has_value());
  EXPECT_EQ(*spawns, 1u);  // one worker group served every sort
  // Grounding sees all five sorts, 7 rounds each, identically charged.
  EXPECT_EQ(ctx.level1_sort_grounding()->total_rounds(), 35u);
  tracer.clear();
}

// Pooling must not leak state between sorts of the same shape but
// different contents: alternating inputs through one context matches the
// central path on every repetition (a stale inbox or arena would corrupt
// the second sort's buckets).
TEST(DistributedSortPooling, AlternatingInputsStayIndependent) {
  util::SplitRng rng(62);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> a, b;
  for (std::size_t i = 0; i < 20000; ++i) {
    a.emplace_back(static_cast<std::uint32_t>(rng.next_below(64)), i);
    b.emplace_back(static_cast<std::uint32_t>(63 - rng.next_below(64)), i);
  }
  const auto key = [](const auto& kv) {
    return MpcContext::word_key(kv.first);
  };
  const auto central_sorted = [&](auto items) {
    std::stable_sort(items.begin(), items.end(),
                     [](const auto& x, const auto& y) {
                       return x.first < y.first;
                     });
    return items;
  };
  const auto expected_a = central_sorted(a);
  const auto expected_b = central_sorted(b);

  ClusterConfig cfg{64, 4096};
  cfg.distributed_level1 = true;
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  for (int rep = 0; rep < 3; ++rep) {
    auto sa = a;
    ctx.sort_items_by_key(sa, key, 2, "sort");
    EXPECT_EQ(sa, expected_a) << "rep " << rep;
    auto sb = b;
    ctx.sort_items_by_key(sb, key, 2, "sort");
    EXPECT_EQ(sb, expected_b) << "rep " << rep;
  }
}

TEST(MpcContext, DivCeilRejectsZeroDivisor) {
  EXPECT_THROW(MpcContext::div_ceil(5, 0), arbor::InvariantError);
  EXPECT_EQ(MpcContext::div_ceil(0, 3), 0u);
  EXPECT_EQ(MpcContext::div_ceil(7, 3), 3u);
}

TEST(MpcContext, EnsureEngineIsSharedAndLazy) {
  ClusterConfig cfg{8, 1024};
  MpcContext ctx(cfg, nullptr);
  EXPECT_EQ(ctx.engine(), nullptr);  // lazy: nothing built yet
  engine::Engine* built = ctx.ensure_engine();
  ASSERT_NE(built, nullptr);
  EXPECT_EQ(ctx.ensure_engine(), built);  // same engine on every call
  EXPECT_EQ(ctx.engine(), built);

  engine::Engine external(engine::ExecutionPolicy::serial());
  MpcContext injected(cfg, nullptr, &external);
  EXPECT_EQ(injected.ensure_engine(), &external);  // injected wins
}

// -------------------------------------------------- full-pipeline equivalence

// The layering and coloring pipelines must produce identical outputs and
// ledger totals with distributed_level1 on (serial and parallel(4)) vs.
// off, across several generator seeds.

struct PolicyCase {
  bool distributed;
  engine::ExecutionPolicy policy;
  const char* name;
};

const PolicyCase kDistributedCases[] = {
    {true, engine::ExecutionPolicy::serial(), "distributed/serial"},
    {true, engine::ExecutionPolicy::parallel(4), "distributed/parallel(4)"},
};

TEST(PipelineEquivalence, CompleteLayeringIdenticalAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    util::SplitRng rng(seed);
    const graph::Graph g = graph::gnm(400, 1600, rng);
    const core::PipelineParams params = core::PipelineParams::practical(4);

    RoundLedger central_ledger(config_for(g, false));
    MpcContext central_ctx(config_for(g, false), &central_ledger);
    const core::CompleteLayeringResult central =
        core::complete_layering(g, params, central_ctx);

    for (const PolicyCase& c : kDistributedCases) {
      RoundLedger ledger(config_for(g, c.distributed, c.policy));
      MpcContext ctx(config_for(g, c.distributed, c.policy), &ledger);
      const core::CompleteLayeringResult result =
          core::complete_layering(g, params, ctx);
      EXPECT_EQ(result.assignment.layer, central.assignment.layer)
          << c.name << " seed " << seed;
      EXPECT_EQ(result.assignment.num_layers, central.assignment.num_layers);
      EXPECT_EQ(result.outdegree_bound, central.outdegree_bound);
      expect_ledgers_identical(ledger, central_ledger);
    }
  }
}

TEST(PipelineEquivalence, MpcColoringIdenticalAcrossSeeds) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    util::SplitRng rng(seed);
    const graph::Graph g = graph::gnm(300, 1200, rng);
    core::ColoringParams params;
    params.pipeline = core::PipelineParams::practical(4);

    RoundLedger central_ledger(config_for(g, false));
    MpcContext central_ctx(config_for(g, false), &central_ledger);
    const core::MpcColoringResult central =
        core::mpc_color(g, params, central_ctx);

    for (const PolicyCase& c : kDistributedCases) {
      RoundLedger ledger(config_for(g, c.distributed, c.policy));
      MpcContext ctx(config_for(g, c.distributed, c.policy), &ledger);
      const core::MpcColoringResult result = core::mpc_color(g, params, ctx);
      EXPECT_EQ(result.colors, central.colors) << c.name << " seed " << seed;
      EXPECT_EQ(result.palette_size, central.palette_size);
      EXPECT_EQ(result.layering_outdegree, central.layering_outdegree);
      EXPECT_EQ(result.blocks, central.blocks);
      expect_ledgers_identical(ledger, central_ledger);
    }
  }
}

TEST(PipelineEquivalence, MpcOrientationIdenticalAcrossSeeds) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    util::SplitRng rng(seed);
    const graph::Graph g = graph::gnm(350, 1400, rng);
    core::OrientationParams params;
    params.pipeline = core::PipelineParams::practical(4);

    RoundLedger central_ledger(config_for(g, false));
    MpcContext central_ctx(config_for(g, false), &central_ledger);
    const core::MpcOrientationResult central =
        core::mpc_orient(g, params, central_ctx);

    for (const PolicyCase& c : kDistributedCases) {
      RoundLedger ledger(config_for(g, c.distributed, c.policy));
      MpcContext ctx(config_for(g, c.distributed, c.policy), &ledger);
      const core::MpcOrientationResult result =
          core::mpc_orient(g, params, ctx);
      for (std::size_t e = 0; e < g.num_edges(); ++e)
        ASSERT_EQ(result.orientation.oriented_towards_v(e),
                  central.orientation.oriented_towards_v(e))
            << c.name << " seed " << seed << " edge " << e;
      EXPECT_EQ(result.layering.layer, central.layering.layer);
      EXPECT_EQ(result.outdegree_bound, central.outdegree_bound);
      expect_ledgers_identical(ledger, central_ledger);
    }
  }
}

}  // namespace
}  // namespace arbor
