// Tests for Lemmas 2.1/2.2: random edge/vertex partitioning reduces
// per-part arboricity, validated with the degeneracy oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "core/partitioning.hpp"
#include "graph/arboricity.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace arbor::core {
namespace {

using graph::Graph;
using graph::VertexId;

TEST(PartitionCount, Formula) {
  EXPECT_EQ(partition_count(1, 1024), 1u);       // ⌈1/10⌉
  EXPECT_EQ(partition_count(10, 1024), 1u);      // ⌈10/10⌉
  EXPECT_EQ(partition_count(25, 1024), 3u);      // ⌈25/10⌉
  EXPECT_EQ(partition_count(100, 1 << 20), 5u);  // ⌈100/20⌉
}

TEST(EdgePartition, EdgesPreservedExactlyOnce) {
  util::SplitRng rng(1);
  const Graph g = graph::gnm(200, 1000, rng);
  const EdgePartition partition = random_edge_partition(g, 4, rng);
  ASSERT_EQ(partition.parts.size(), 4u);
  ASSERT_EQ(partition.part_of_edge.size(), g.num_edges());
  std::size_t total = 0;
  for (const Graph& part : partition.parts) {
    total += part.num_edges();
    EXPECT_EQ(part.num_vertices(), g.num_vertices());  // ids preserved
  }
  EXPECT_EQ(total, g.num_edges());
  // Edge i must actually be present in its assigned part.
  const auto edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_TRUE(partition.parts[partition.part_of_edge[i]].has_edge(
        edges[i].u, edges[i].v));
  }
}

TEST(EdgePartition, Lemma21ReducesArboricity) {
  // Dense planted graph: λ ≈ 40. Partition into ⌈k/log n⌉ parts and check
  // every part's degeneracy is O(log n) with a generous constant.
  util::SplitRng rng(2);
  const std::size_t n = 512;
  const Graph g = graph::planted_clique(n, 2000, 80, rng);  // λ ≥ 39
  const std::size_t k = graph::degeneracy(g);
  ASSERT_GE(k, 39u);
  const std::size_t parts = partition_count(k, n);
  ASSERT_GE(parts, 2u);
  const EdgePartition partition = random_edge_partition(g, parts, rng);
  const double log_n = std::log2(static_cast<double>(n));
  for (const Graph& part : partition.parts) {
    EXPECT_LE(static_cast<double>(graph::degeneracy(part)), 4.0 * log_n)
        << "Lemma 2.1: part arboricity should be O(log n)";
  }
}

TEST(VertexPartition, DisjointCover) {
  util::SplitRng rng(3);
  const Graph g = graph::gnm(300, 900, rng);
  const VertexPartition partition = random_vertex_partition(g, 5, rng);
  ASSERT_EQ(partition.parts.size(), 5u);
  std::vector<int> seen(g.num_vertices(), 0);
  for (std::size_t p = 0; p < 5; ++p) {
    EXPECT_EQ(partition.parts[p].num_vertices(),
              partition.to_original[p].size());
    for (VertexId v : partition.to_original[p]) {
      ++seen[v];
      EXPECT_EQ(partition.part_of_vertex[v], p);
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(VertexPartition, PartEdgesAreInducedEdges) {
  util::SplitRng rng(4);
  const Graph g = graph::gnm(100, 400, rng);
  const VertexPartition partition = random_vertex_partition(g, 3, rng);
  for (std::size_t p = 0; p < 3; ++p) {
    const Graph& part = partition.parts[p];
    for (const auto& e : part.edges()) {
      EXPECT_TRUE(g.has_edge(partition.to_original[p][e.u],
                             partition.to_original[p][e.v]));
    }
  }
}

TEST(VertexPartition, Lemma22ReducesArboricity) {
  util::SplitRng rng(5);
  const std::size_t n = 512;
  const Graph g = graph::planted_clique(n, 2000, 80, rng);
  const std::size_t k = graph::degeneracy(g);
  const std::size_t parts = partition_count(k, n);
  ASSERT_GE(parts, 2u);
  const VertexPartition partition = random_vertex_partition(g, parts, rng);
  const double log_n = std::log2(static_cast<double>(n));
  for (const Graph& part : partition.parts) {
    EXPECT_LE(static_cast<double>(graph::degeneracy(part)), 4.0 * log_n)
        << "Lemma 2.2: part arboricity should be O(log n)";
  }
}

TEST(Partitioning, SinglePartIsIdentity) {
  util::SplitRng rng(6);
  const Graph g = graph::gnm(50, 100, rng);
  const EdgePartition ep = random_edge_partition(g, 1, rng);
  EXPECT_EQ(ep.parts[0].num_edges(), g.num_edges());
  const VertexPartition vp = random_vertex_partition(g, 1, rng);
  EXPECT_EQ(vp.parts[0].num_vertices(), g.num_vertices());
  EXPECT_EQ(vp.parts[0].num_edges(), g.num_edges());
}

}  // namespace
}  // namespace arbor::core
