// Tests for the run tracing + metrics telemetry (src/trace/):
//
//   * strict ARBOR_TRACE flag parsing and percentile math;
//   * tracing is observation only — outputs and ledger totals are
//     bit-identical with tracing off or full, across {serial, parallel} ×
//     {async on, off} × {in-process, loopback, tcp:2};
//   * the emitted Chrome trace is valid JSON (a real parse, not a grep)
//     with at least one span per named step of the tree sample sort;
//   * a traced tcp worker group ships spans and metrics back: the merged
//     report carries both workers' lanes, and the driver-side
//     cluster.round_words.* counters match the ledger's per-label traffic
//     totals exactly.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "local/mpc_embedding.hpp"
#include "mpc/cluster.hpp"
#include "mpc/ledger.hpp"
#include "mpc/sample_sort.hpp"
#include "trace/json_check.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace arbor::trace {
namespace {

using mpc::ClusterConfig;
using mpc::TransportConfig;
using mpc::Word;

// ------------------------------------------------------------- parsing

TEST(TraceFlag, ParsesStrictly) {
  EXPECT_EQ(parse_trace_flag("off", "ARBOR_TRACE"),
            (TraceConfig{Mode::kOff, ""}));
  EXPECT_EQ(parse_trace_flag("spans", "ARBOR_TRACE"),
            (TraceConfig{Mode::kSpans, ""}));
  EXPECT_EQ(parse_trace_flag("full", "ARBOR_TRACE"),
            (TraceConfig{Mode::kFull, ""}));
  EXPECT_EQ(parse_trace_flag("full:/tmp/t.json", "ARBOR_TRACE"),
            (TraceConfig{Mode::kFull, "/tmp/t.json"}));
  EXPECT_EQ(parse_trace_flag("spans:out.json", "ARBOR_TRACE"),
            (TraceConfig{Mode::kSpans, "out.json"}));

  const auto rejected = [](std::string_view value,
                           std::string_view fragment) {
    try {
      parse_trace_flag(value, "ARBOR_TRACE");
      FAIL() << "expected rejection of " << value;
    } catch (const InvariantError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("ARBOR_TRACE=\"" + std::string(value) + "\""),
                std::string::npos)
          << what;
      EXPECT_NE(what.find(fragment), std::string::npos) << what;
    }
  };
  rejected("verbose", "not a trace mode");
  rejected("Full", "not a trace mode");  // strict: no case folding
  rejected("", "not a trace mode");
  rejected("full:", "trace path is empty");
  rejected("off:file.json", "the off mode takes no trace path");
}

TEST(Percentile, NearestRankOnKnownSamples) {
  const std::vector<double> sorted{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(sorted, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 95), 10.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 99), 10.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 50), 0.0);
}

TEST(Metrics, RegistryMergesDeterministically) {
  MetricsRegistry a;
  a.add("words", 10);
  a.observe("lat", 1.0);
  a.observe("lat", 3.0);

  MetricsRegistry b;
  b.add("words", 32);
  HistogramSnapshot h;
  h.name = "lat";
  h.count = 1;
  h.sum = 2.0;
  h.samples = {2.0};
  b.merge({{"words", 5}}, {h});
  EXPECT_EQ(b.counter("words"), 37u);

  a.merge({{"words", 37}}, {h});
  EXPECT_EQ(a.counter("words"), 47u);
  const auto lat = a.histogram("lat");
  ASSERT_TRUE(lat.has_value());
  EXPECT_EQ(lat->count, 3u);
  EXPECT_DOUBLE_EQ(lat->sum, 6.0);
  // Merged samples append in arrival order (sorted only for percentiles):
  // the registry preserves exactly what each rank shipped.
  EXPECT_EQ(lat->samples, (std::vector<double>{1.0, 3.0, 2.0}));
  EXPECT_FALSE(a.counter("missing").has_value());
}

// ------------------------------------------------ perturbation matrix

struct SortRun {
  std::vector<std::vector<Word>> slabs;
  std::size_t total_rounds = 0;
  std::map<std::string, std::size_t> rounds_by_label;
  std::map<std::string, std::size_t> traffic_by_label;
  std::size_t peak_traffic = 0;
};

std::vector<std::vector<Word>> sort_input(std::size_t machines,
                                          std::size_t per_machine) {
  util::SplitRng rng(97);
  std::vector<std::vector<Word>> slabs(machines);
  for (auto& slab : slabs)
    for (std::size_t i = 0; i < per_machine; ++i)
      slab.push_back(rng.next_below(Word{1} << 30));
  return slabs;
}

ClusterConfig sort_config(std::size_t machines, std::size_t per_machine,
                          std::size_t samples) {
  const std::size_t total = machines * per_machine;
  return ClusterConfig{machines, 2 * total + machines * (samples + 1) +
                                     machines * machines};
}

SortRun run_sort(ClusterConfig cfg) {
  const std::size_t machines = cfg.num_machines;
  const std::size_t samples = 8;
  mpc::RoundLedger ledger(cfg);
  mpc::Cluster cluster(cfg, &ledger);
  const mpc::SampleSortResult sorted = sample_sort(
      cluster, sort_input(machines, 64), samples, mpc::SplitterStrategy::kTree);
  SortRun run;
  run.slabs = sorted.slabs;
  run.total_rounds = ledger.total_rounds();
  run.rounds_by_label = ledger.rounds_by_label();
  run.traffic_by_label = ledger.traffic_words_by_label();
  run.peak_traffic = ledger.peak_round_traffic();
  return run;
}

TEST(TracePerturbation, OffAndFullAreBitIdenticalAcrossBackends) {
  Tracer& tracer = Tracer::global();
  // Save/restore the global mode (cluster configs RAISE it), and drop the
  // spans this test records so later tests see a clean registry.
  ScopedMode guard(tracer, tracer.mode());

  struct Backend {
    const char* name;
    mpc::ExecutionPolicy policy;
    TransportConfig transport{};
  };
  const Backend backends[] = {
      {"serial", mpc::ExecutionPolicy::serial()},
      {"parallel/strict", mpc::ExecutionPolicy::parallel(2).with_async(false)},
      {"parallel/async", mpc::ExecutionPolicy::parallel(2).with_async(true)},
      {"loopback:2", mpc::ExecutionPolicy::serial(), TransportConfig::loopback(2)},
      {"tcp:2", mpc::ExecutionPolicy::serial(), TransportConfig::tcp(2)},
  };
  for (const Backend& backend : backends) {
    ClusterConfig cfg = sort_config(8, 64, 8);
    cfg.execution = backend.policy;
    cfg.transport = backend.transport;

    cfg.trace = TraceConfig{Mode::kOff, ""};
    const SortRun off = run_sort(cfg);
    cfg.trace = TraceConfig{Mode::kFull, ""};
    const SortRun full = run_sort(cfg);

    EXPECT_EQ(off.slabs, full.slabs) << backend.name;
    EXPECT_EQ(off.total_rounds, full.total_rounds) << backend.name;
    EXPECT_EQ(off.rounds_by_label, full.rounds_by_label) << backend.name;
    EXPECT_EQ(off.traffic_by_label, full.traffic_by_label) << backend.name;
    EXPECT_EQ(off.peak_traffic, full.peak_traffic) << backend.name;
    EXPECT_GT(full.total_rounds, 0u) << backend.name;
  }
  tracer.clear();
}

// ------------------------------------------------------- trace output

TEST(TraceOutput, ValidJsonWithASpanPerNamedStep) {
  Tracer& tracer = Tracer::global();
  ScopedMode guard(tracer, tracer.mode());
  tracer.clear();

  ClusterConfig cfg = sort_config(16, 64, 8);
  cfg.trace = TraceConfig{Mode::kFull, ""};
  const SortRun run = run_sort(cfg);
  ASSERT_FALSE(run.rounds_by_label.empty());
  EXPECT_GT(tracer.span_count(), 0u);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string body = os.str();

  const JsonCheckResult check = check_json(body);
  EXPECT_TRUE(check.ok) << check.error << " at byte " << check.offset
                        << "\n"
                        << body.substr(0, 400);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"metrics\""), std::string::npos);

  // Every named step the ledger charged appears in at least one span name
  // (the scheduler tags compute/route/deliver spans with the step label).
  for (const auto& [label, rounds] : run.rounds_by_label) {
    EXPECT_NE(body.find(label), std::string::npos)
        << "no span mentions step " << label;
  }
  // The tree sort's named steps specifically (PR 5's labels).
  EXPECT_NE(body.find("sample_sort."), std::string::npos);
  tracer.clear();
}

TEST(TraceOutput, DisabledTracerRecordsNothing) {
  Tracer tracer;  // defaults to kOff
  { Span s = tracer.span("engine", "compute x"); }
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_TRUE(tracer.metrics().empty());
  EXPECT_TRUE(tracer.drain_telemetry().empty());
}

// -------------------------------------------------- worker telemetry

TEST(TraceTelemetry, TcpWorkersShipSpansAndMetricsMatchingLedger) {
  Tracer& tracer = Tracer::global();
  ScopedMode guard(tracer, tracer.mode());
  tracer.clear();

  ClusterConfig cfg = sort_config(8, 64, 8);
  cfg.transport = TransportConfig::tcp(2);
  cfg.trace = TraceConfig{Mode::kFull, ""};

  mpc::RoundLedger ledger(cfg);
  mpc::Cluster cluster(cfg, &ledger);
  const mpc::SampleSortResult sorted =
      sample_sort(cluster, sort_input(8, 64), 8, mpc::SplitterStrategy::kTree);
  ASSERT_FALSE(sorted.slabs.empty());

  // Driver-side counters mirror the ledger charge exactly, label by label.
  const auto& traffic = ledger.traffic_words_by_label();
  ASSERT_FALSE(traffic.empty());
  for (const auto& [label, words] : traffic) {
    const auto counter = tracer.metrics().counter("cluster.round_words." + label);
    ASSERT_TRUE(counter.has_value()) << label;
    EXPECT_EQ(*counter, words) << label;
  }
  for (const auto& [label, rounds] : ledger.rounds_by_label()) {
    const auto counter = tracer.metrics().counter("cluster.rounds." + label);
    ASSERT_TRUE(counter.has_value()) << label;
    EXPECT_EQ(*counter, rounds) << label;
  }

  // Both workers shipped telemetry: the merged trace has driver + two
  // worker process lanes, and worker-side per-step metrics arrived.
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string body = os.str();
  EXPECT_TRUE(check_json(body).ok);
  EXPECT_NE(body.find("\"driver\""), std::string::npos);
  EXPECT_NE(body.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(body.find("\"worker 1\""), std::string::npos);
  bool saw_worker_metric = false;
  for (const auto& [name, value] : tracer.metrics().counters())
    if (name.rfind("net.sent_words.", 0) == 0 && value > 0)
      saw_worker_metric = true;
  EXPECT_TRUE(saw_worker_metric)
      << "no net.sent_words.* counter arrived via telemetry";
  tracer.clear();
}

// ------------------------------------------------- fetch-cache metric
//
// Peeling's split-adjacency fetches repeat across passes (the decrement
// walk of pass k+1 re-reads what the peel scan of pass k built), so a
// multi-pass run with the cache on must record engine.fetch_cache_hits >
// 0 — and the layers must be bit-identical with the cache off, where the
// counter never appears.
TEST(TraceTelemetry, FetchCacheHitsCountedAndObservationOnly) {
  Tracer& tracer = Tracer::global();
  ScopedMode guard(tracer, tracer.mode());

  util::SplitRng rng(98);
  const graph::Graph g = graph::gnm(300, 900, rng);

  ClusterConfig cfg{8, 4096};
  cfg.trace = TraceConfig{Mode::kFull, ""};
  cfg.fetch_cache = true;
  tracer.clear();
  mpc::Cluster cached(cfg, nullptr);
  const auto with_cache = local::embedded_threshold_peeling(g, 6, cached, 100);
  const auto hits = tracer.metrics().counter("engine.fetch_cache_hits");
  ASSERT_TRUE(hits.has_value());
  EXPECT_GT(*hits, 0u);

  cfg.fetch_cache = false;
  tracer.clear();
  mpc::Cluster uncached(cfg, nullptr);
  const auto without = local::embedded_threshold_peeling(g, 6, uncached, 100);
  EXPECT_FALSE(tracer.metrics().counter("engine.fetch_cache_hits").has_value());

  EXPECT_EQ(with_cache.layer, without.layer);
  EXPECT_EQ(with_cache.num_layers, without.num_layers);
  EXPECT_EQ(with_cache.complete, without.complete);
  tracer.clear();
}

}  // namespace
}  // namespace arbor::trace
