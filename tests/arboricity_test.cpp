// Tests for density/arboricity measurement: Dinic max-flow, Goldberg's
// exact densest subgraph, degeneracy, and the sandwich bounds.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "graph/arboricity.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "util/rng.hpp"

namespace arbor::graph {
namespace {

TEST(MaxFlow, SimplePath) {
  MaxFlow f(3);
  f.add_arc(0, 1, 5);
  f.add_arc(1, 2, 3);
  EXPECT_EQ(f.solve(0, 2), 3);
}

TEST(MaxFlow, ParallelPaths) {
  MaxFlow f(4);
  f.add_arc(0, 1, 2);
  f.add_arc(1, 3, 2);
  f.add_arc(0, 2, 3);
  f.add_arc(2, 3, 1);
  EXPECT_EQ(f.solve(0, 3), 3);
}

TEST(MaxFlow, ClassicDiamondWithCross) {
  // Standard example with a cross edge: max flow 2000 + 1? Construct:
  MaxFlow f(4);
  f.add_arc(0, 1, 100);
  f.add_arc(0, 2, 100);
  f.add_arc(1, 2, 1);
  f.add_arc(1, 3, 100);
  f.add_arc(2, 3, 100);
  EXPECT_EQ(f.solve(0, 3), 200);
}

TEST(MaxFlow, MinCutSourceSide) {
  MaxFlow f(4);
  f.add_arc(0, 1, 10);
  f.add_arc(1, 2, 1);  // bottleneck
  f.add_arc(2, 3, 10);
  EXPECT_EQ(f.solve(0, 3), 1);
  const auto side = f.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow f(3);
  f.add_arc(0, 1, 4);
  EXPECT_EQ(f.solve(0, 2), 0);
}

TEST(MaxFlow, RejectsDoubleSolve) {
  MaxFlow f(2);
  f.add_arc(0, 1, 1);
  f.solve(0, 1);
  EXPECT_THROW(f.solve(0, 1), arbor::InvariantError);
}

TEST(DensestSubgraph, EmptyGraph) {
  const Graph g = GraphBuilder(5).build();
  const DensestSubgraph ds = exact_densest_subgraph(g);
  EXPECT_EQ(ds.density, 0.0);
  EXPECT_TRUE(ds.vertices.empty());
}

TEST(DensestSubgraph, SingleEdge) {
  const Graph g = from_edges(2, std::vector<Edge>{{0, 1}});
  const DensestSubgraph ds = exact_densest_subgraph(g);
  EXPECT_DOUBLE_EQ(ds.density, 0.5);
  EXPECT_EQ(ds.vertices.size(), 2u);
}

TEST(DensestSubgraph, CliqueDensity) {
  for (std::size_t k : {3u, 5u, 8u}) {
    const Graph g = clique(k);
    const DensestSubgraph ds = exact_densest_subgraph(g);
    EXPECT_DOUBLE_EQ(ds.density,
                     static_cast<double>(k - 1) / 2.0)
        << "K_" << k;
    EXPECT_EQ(ds.vertices.size(), k);
  }
}

TEST(DensestSubgraph, CycleDensityIsOne) {
  const Graph g = cycle(12);
  const DensestSubgraph ds = exact_densest_subgraph(g);
  EXPECT_DOUBLE_EQ(ds.density, 1.0);
}

TEST(DensestSubgraph, FindsPlantedClique) {
  util::SplitRng rng(5);
  const Graph g = planted_clique(300, 200, 20, rng);
  const DensestSubgraph ds = exact_densest_subgraph(g);
  // K_20 alone has density 9.5; the maximizer may include a few extras but
  // must be at least as dense.
  EXPECT_GE(ds.density, 9.5);
}

TEST(DensestSubgraph, StarDensity) {
  // The whole star is the densest subgraph: (n-1)/n.
  const Graph g = star(10);
  const DensestSubgraph ds = exact_densest_subgraph(g);
  EXPECT_DOUBLE_EQ(ds.density, 9.0 / 10.0);
}

TEST(Degeneracy, KnownFamilies) {
  EXPECT_EQ(degeneracy(path(10)), 1u);
  EXPECT_EQ(degeneracy(star(10)), 1u);
  EXPECT_EQ(degeneracy(cycle(10)), 2u);
  EXPECT_EQ(degeneracy(clique(6)), 5u);
  EXPECT_EQ(degeneracy(grid(4, 4)), 2u);
  EXPECT_EQ(degeneracy(complete_bipartite(3, 9)), 3u);
  EXPECT_EQ(degeneracy(GraphBuilder(4).build()), 0u);
}

TEST(Degeneracy, EliminationOrderWitnessesBound) {
  util::SplitRng rng(6);
  const Graph g = gnm(200, 800, rng);
  std::vector<VertexId> order;
  const std::size_t d = degeneracy(g, &order);
  ASSERT_EQ(order.size(), g.num_vertices());
  // Every vertex must have ≤ d neighbors later in the order.
  std::vector<std::size_t> pos(g.num_vertices());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::size_t later = 0;
    for (VertexId w : g.neighbors(v))
      if (pos[w] > pos[v]) ++later;
    EXPECT_LE(later, d);
  }
}

TEST(PeelingDensity, WithinFactorTwo) {
  util::SplitRng rng(7);
  const Graph g = planted_clique(300, 300, 24, rng);
  const double exact = exact_densest_subgraph(g).density;
  const double approx = peeling_density_lower_bound(g);
  EXPECT_LE(approx, exact + 1e-9);
  EXPECT_GE(approx, exact / 2.0 - 1e-9);
}

TEST(ArboricityBounds, SandwichHolds) {
  util::SplitRng rng(8);
  for (int i = 0; i < 6; ++i) {
    const Graph g = gnm(120, 120 * (i + 1), rng);
    const ArboricityBounds b = arboricity_bounds(g);
    EXPECT_LE(b.lower, b.upper);
    EXPECT_GE(b.upper, 1u);
  }
}

TEST(ArboricityBounds, ExactOnForest) {
  util::SplitRng rng(9);
  const Graph g = random_forest(200, rng);
  const ArboricityBounds b = arboricity_bounds(g);
  EXPECT_EQ(b.lower, 1u);
  EXPECT_EQ(b.upper, 1u);
}

TEST(ArboricityBounds, CliqueIsTight) {
  // λ(K_6) = ⌈15/5⌉ = 3, degeneracy 5.
  const ArboricityBounds b = arboricity_bounds(clique(6));
  EXPECT_EQ(b.lower, 3u);
  EXPECT_EQ(b.upper, 5u);
}

}  // namespace
}  // namespace arbor::graph
