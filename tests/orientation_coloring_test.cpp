// Tests for the orientation/coloring value types and the sequential
// references.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "graph/arboricity.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "graph/orientation.hpp"
#include "util/rng.hpp"

namespace arbor::graph {
namespace {

TEST(Orientation, OutdegreesSumToEdgeCount) {
  util::SplitRng rng(1);
  const Graph g = gnm(60, 150, rng);
  const Orientation o = orient_by_degeneracy(g);
  const auto out = o.outdegrees(g);
  std::size_t total = 0;
  for (std::size_t d : out) total += d;
  EXPECT_EQ(total, g.num_edges());
}

TEST(Orientation, SizeMismatchRejected) {
  const Graph g = clique(4);
  EXPECT_THROW(Orientation(g, std::vector<bool>(2, true)),
               arbor::InvariantError);
}

TEST(Orientation, DegeneracyOrientationMatchesDegeneracy) {
  util::SplitRng rng(2);
  for (std::size_t k : {1u, 3u, 6u}) {
    const Graph g = forest_union(150, k, rng);
    const std::size_t d = degeneracy(g);
    EXPECT_EQ(orient_by_degeneracy(g).max_outdegree(g), d);
  }
}

TEST(Orientation, OutNeighborsConsistent) {
  util::SplitRng rng(3);
  const Graph g = gnm(40, 100, rng);
  const Orientation o = orient_by_degeneracy(g);
  const auto outs = o.out_neighbors(g);
  const auto degs = o.outdegrees(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(outs[v].size(), degs[v]);
    for (VertexId w : outs[v]) EXPECT_TRUE(g.has_edge(v, w));
  }
}

TEST(OrientByLayers, RespectsLayerOrder) {
  // Path 0-1-2 with layers 2,1,3: edge 0-1 → toward 0 (higher layer);
  // edge 1-2 → toward 2.
  const Graph g = path(3);
  const std::vector<std::uint32_t> layers{2, 1, 3};
  const Orientation o = orient_by_layers(g, layers, 0xffffffffu);
  const auto outs = o.out_neighbors(g);
  EXPECT_EQ(outs[1].size(), 2u);  // vertex 1 points both ways (lowest layer)
  EXPECT_EQ(outs[0].size(), 0u);
  EXPECT_EQ(outs[2].size(), 0u);
}

TEST(OrientByLayers, TieBreaksTowardHigherId) {
  const Graph g = path(2);
  const std::vector<std::uint32_t> layers{5, 5};
  const Orientation o = orient_by_layers(g, layers, 0xffffffffu);
  EXPECT_EQ(o.out_neighbors(g)[0].size(), 1u);  // 0 -> 1
}

TEST(OrientByLayers, InfinityIsHighest) {
  const Graph g = path(2);
  const std::vector<std::uint32_t> layers{0xffffffffu, 7};
  const Orientation o = orient_by_layers(g, layers, 0xffffffffu);
  EXPECT_EQ(o.out_neighbors(g)[1].size(), 1u);  // finite -> infinite
}

TEST(CheckColoring, DetectsViolation) {
  const Graph g = path(3);
  const ColoringCheck bad = check_coloring(g, {1, 1, 2});
  EXPECT_FALSE(bad.proper);
  ASSERT_TRUE(bad.violation.has_value());
  EXPECT_EQ(bad.violation->u, 0u);
  EXPECT_EQ(bad.violation->v, 1u);
}

TEST(CheckColoring, AcceptsProperAndCountsColors) {
  const Graph g = cycle(4);
  const ColoringCheck ok = check_coloring(g, {0, 1, 0, 1});
  EXPECT_TRUE(ok.proper);
  EXPECT_EQ(ok.colors_used, 2u);
}

TEST(CheckColoring, WrongSizeIsImproper) {
  const Graph g = path(3);
  EXPECT_FALSE(check_coloring(g, {0, 1}).proper);
}

TEST(GreedyColoring, ProperOnRandomGraphs) {
  util::SplitRng rng(4);
  for (int i = 0; i < 5; ++i) {
    const Graph g = gnm(100, 300, rng);
    const auto colors = degeneracy_coloring(g);
    const ColoringCheck check = check_coloring(g, colors);
    EXPECT_TRUE(check.proper);
    EXPECT_LE(check.colors_used, degeneracy(g) + 1);
  }
}

TEST(GreedyColoring, TreeUsesTwoColors) {
  util::SplitRng rng(5);
  const Graph g = random_forest(100, rng, 0.0);
  const auto colors = degeneracy_coloring(g);
  EXPECT_TRUE(check_coloring(g, colors).proper);
  EXPECT_LE(check_coloring(g, colors).colors_used, 2u);
}

TEST(GreedyColoring, CliqueNeedsAllColors) {
  const Graph g = clique(5);
  const auto colors = degeneracy_coloring(g);
  EXPECT_EQ(check_coloring(g, colors).colors_used, 5u);
}

}  // namespace
}  // namespace arbor::graph
