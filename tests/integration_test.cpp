// Cross-module integration tests: complete Theorem 1.1 + 1.2 workflows on
// diverse graph families, consistency between orientation and coloring
// quality, and comparisons against the baselines — miniature versions of
// the EXPERIMENTS.md runs that must stay green.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/assert.hpp"
#include "baselines/be08_mpc.hpp"
#include "baselines/glm19.hpp"
#include "baselines/sequential.hpp"
#include "core/coloring_mpc.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/arboricity.hpp"
#include "graph/generators.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"

namespace arbor {
namespace {

using graph::Graph;

struct Workload {
  const char* name;
  Graph graph;
};

std::vector<Workload> workloads() {
  util::SplitRng rng(4242);
  std::vector<Workload> out;
  out.push_back({"forest", graph::random_forest(600, rng)});
  out.push_back({"forest_union_4", graph::forest_union(600, 4, rng)});
  out.push_back({"gnm_sparse", graph::gnm(600, 1800, rng)});
  out.push_back({"grid", graph::grid(25, 24)});
  out.push_back({"star", graph::star(600)});
  out.push_back({"ba", graph::barabasi_albert(600, 3, rng)});
  out.push_back({"planted", graph::planted_clique(600, 1200, 24, rng)});
  out.push_back({"cycle", graph::cycle(600)});
  return out;
}

mpc::MpcContext make_ctx(const Graph& g, mpc::RoundLedger*& ledger_out) {
  const auto cfg = mpc::ClusterConfig::for_problem(
      g.num_vertices(), g.num_edges(), 0.6);
  static thread_local std::vector<std::unique_ptr<mpc::RoundLedger>> keep;
  keep.push_back(std::make_unique<mpc::RoundLedger>(cfg));
  ledger_out = keep.back().get();
  return mpc::MpcContext(cfg, ledger_out);
}

TEST(Integration, OrientationAcrossFamilies) {
  for (auto& w : workloads()) {
    mpc::RoundLedger* ledger = nullptr;
    auto ctx = make_ctx(w.graph, ledger);
    const core::MpcOrientationResult result =
        core::mpc_orient(w.graph, {}, ctx);
    const std::size_t measured = result.orientation.max_outdegree(w.graph);
    EXPECT_LE(measured, result.outdegree_bound) << w.name;

    // Against the sequential yardstick (degeneracy ≤ 2λ-1): we promise
    // O(λ log log n) — generous factor over the yardstick.
    const baselines::SequentialReference ref =
        baselines::sequential_reference(w.graph);
    const double loglog = std::max(
        1.0, std::log2(std::log2(
                 static_cast<double>(w.graph.num_vertices()))));
    EXPECT_LE(static_cast<double>(measured),
              16.0 * static_cast<double>(std::max<std::size_t>(
                         ref.degeneracy, 1)) *
                  loglog)
        << w.name;
    EXPECT_GT(ledger->total_rounds(), 0u) << w.name;
  }
}

TEST(Integration, ColoringAcrossFamilies) {
  for (auto& w : workloads()) {
    mpc::RoundLedger* ledger = nullptr;
    auto ctx = make_ctx(w.graph, ledger);
    const core::MpcColoringResult result =
        core::mpc_color(w.graph, {}, ctx);
    const auto check = graph::check_coloring(w.graph, result.colors);
    EXPECT_TRUE(check.proper) << w.name;
    EXPECT_LE(check.colors_used, result.palette_size) << w.name;
  }
}

TEST(Integration, ColoringPaletteTracksOrientationOutdegree) {
  // The coloring palette is palette_factor × the layering out-degree; the
  // layering out-degree is the orientation quality. Verify the coupling.
  util::SplitRng rng(1);
  const Graph g = graph::forest_union(500, 3, rng);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  const core::MpcColoringResult coloring = core::mpc_color(g, {}, ctx);
  EXPECT_GE(coloring.palette_size, 3 * coloring.layering_outdegree);
  EXPECT_LE(coloring.palette_size, 3 * coloring.layering_outdegree + 3);
}

TEST(Integration, ThreeAlgorithmsGrowthShapesOnHardInstance) {
  // The E1 story in miniature on the slow-peeling chain (the hard instance
  // for threshold peeling). At in-memory scales our poly(log log n)
  // constants still exceed BE08's log n, so the honest comparison — the
  // one the paper's asymptotic claim makes — is the GROWTH of rounds as
  // the instance deepens: BE08 pays one extra round per extra level, ours
  // stays flat because its out-degree allowance (s+1)·k exceeds the
  // chain's sustained degree and one partial phase clears everything.
  util::SplitRng rng(2);
  const std::size_t levels_small = 6, levels_large = 12;
  std::vector<std::size_t> ours_rounds, be_rounds, glm_rounds;
  std::size_t lambda = 0;
  // Fix the cluster shape to the LARGE instance's S = n^δ for both runs:
  // growth must come from the algorithms, not from S-quantization of the
  // sort costs (the small instance simply occupies fewer machines).
  const auto big_chain = graph::slow_peeling_chain(levels_large, 10, rng);
  const auto shared_cfg = mpc::ClusterConfig::for_problem(
      big_chain.graph.num_vertices(), big_chain.graph.num_edges(), 0.6);
  for (std::size_t levels : {levels_small, levels_large}) {
    const auto chain = graph::slow_peeling_chain(levels, 10, rng);
    const Graph& g = chain.graph;
    lambda = chain.lambda;

    mpc::RoundLedger ours_l(shared_cfg);
    mpc::MpcContext ours_ctx(shared_cfg, &ours_l);
    core::OrientationParams params;
    params.k = chain.lambda;
    const auto ours = core::mpc_orient(g, params, ours_ctx);
    EXPECT_LE(ours.orientation.max_outdegree(g), ours.outdegree_bound);
    ours_rounds.push_back(ours_l.total_rounds());

    mpc::RoundLedger be_l(shared_cfg);
    mpc::MpcContext be_ctx(shared_cfg, &be_l);
    const auto be = baselines::be08_orient(g, chain.lambda, 0.2, be_ctx);
    EXPECT_LE(be.orientation.max_outdegree(g), be.threshold);
    be_rounds.push_back(be_l.total_rounds());

    mpc::RoundLedger glm_l(shared_cfg);
    mpc::MpcContext glm_ctx(shared_cfg, &glm_l);
    const auto glm = baselines::glm19_orient(g, chain.lambda, 0.2, glm_ctx);
    EXPECT_EQ(glm.orientation.max_outdegree(g),
              be.orientation.max_outdegree(g));
    glm_rounds.push_back(glm_l.total_rounds());
  }

  // BE08: one MPC round per level — grows by the full level difference.
  EXPECT_GE(be_rounds[1], be_rounds[0] + (levels_large - levels_small) - 1);
  // Ours: near-flat in depth — grows strictly slower than BE08 (the only
  // growth source is the log log n step count and sort-round quantization).
  EXPECT_LE(ours_rounds[1] - ours_rounds[0],
            be_rounds[1] - be_rounds[0]);
  // GLM19: in between — compresses each √log n levels into O(log) rounds.
  EXPECT_LT(glm_rounds[1] - glm_rounds[0], be_rounds[1] - be_rounds[0]);
  (void)lambda;
}

TEST(Integration, OrientationThenGreedyColoringWorks) {
  // A downstream-user workflow: take our layering, orient, then greedily
  // color in decreasing-layer order using out-neighbors only — needs
  // exactly outdegree+1 colors, independent of Δ.
  const Graph g = graph::star(1000);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  const auto result = core::mpc_orient(g, {}, ctx);
  ASSERT_TRUE(result.layering.is_complete());

  // Order by decreasing layer (ties by id), color greedily.
  std::vector<graph::VertexId> order(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(),
                   [&](graph::VertexId a, graph::VertexId b) {
                     return result.layering.layer[a] >
                            result.layering.layer[b];
                   });
  const auto colors = graph::greedy_coloring(g, order);
  const auto check = graph::check_coloring(g, colors);
  EXPECT_TRUE(check.proper);
  EXPECT_LE(check.colors_used,
            2 * core::assignment_outdegree(g, result.layering) + 1);
}

TEST(Integration, RelabelingInvariantQuality) {
  // Algorithm quality must not depend on vertex numbering beyond noise.
  util::SplitRng rng(3);
  const Graph g = graph::forest_union(500, 3, rng);
  const Graph h = graph::relabel_randomly(g, rng);

  mpc::RoundLedger* lg = nullptr;
  auto cg = make_ctx(g, lg);
  const auto rg = core::mpc_orient(g, {}, cg);
  mpc::RoundLedger* lh = nullptr;
  auto ch = make_ctx(h, lh);
  const auto rh = core::mpc_orient(h, {}, ch);

  const auto dg = rg.orientation.max_outdegree(g);
  const auto dh = rh.orientation.max_outdegree(h);
  EXPECT_LE(dg, 2 * dh + 4);
  EXPECT_LE(dh, 2 * dg + 4);
}

}  // namespace
}  // namespace arbor
