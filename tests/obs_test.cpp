// Tests for the round observatory (src/obs/): every registered protocol
// runs with its declared CostModel and inside its bounds, RunReports are
// structurally identical across {serial, parallel} x {in-process,
// loopback, tcp}, the post-run bound audit catches an under-declared
// program by name in checked mode (and counts it in unchecked mode), the
// stall watchdog flags an artificially slow step, histogram drop
// accounting surfaces, and the analytic pipeline's ledger audits clean
// against pipeline_cost_model.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/selfcheck.hpp"
#include "check/verify.hpp"
#include "core/layering_pipeline.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/generators.hpp"
#include "local/mpc_embedding.hpp"
#include "mpc/broadcast.hpp"
#include "mpc/bundle_fetch.hpp"
#include "mpc/cluster.hpp"
#include "mpc/config.hpp"
#include "mpc/ledger.hpp"
#include "mpc/primitives.hpp"
#include "mpc/sample_sort.hpp"
#include "net/storm.hpp"
#include "obs/cost_model.hpp"
#include "obs/report.hpp"
#include "obs/watchdog.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace arbor::obs {
namespace {

using engine::ExecutionPolicy;
using engine::Word;
using mpc::ClusterConfig;
using mpc::TransportConfig;

std::vector<std::vector<Word>> random_slabs(std::size_t machines,
                                            std::size_t per_machine,
                                            std::uint64_t seed) {
  util::SplitRng rng(seed);
  std::vector<std::vector<Word>> slabs(machines);
  for (auto& slab : slabs)
    for (std::size_t i = 0; i < per_machine; ++i)
      slab.push_back(rng.next_below(1u << 20));
  return slabs;
}

std::shared_ptr<net::StormState> storm_state(std::size_t machines,
                                             std::size_t batch,
                                             std::size_t rounds,
                                             std::uint64_t seed) {
  auto st = std::make_shared<net::StormState>();
  st->machines = machines;
  st->batch = batch;
  st->rounds = rounds;
  st->slabs = random_slabs(machines, 16, seed);
  return st;
}

/// The most recent report for `program` must exist, cover every label
/// with a declared bound, and violate none of them.
void expect_bounded_clean(const std::string& program) {
  const auto report = ReportLog::global().last(program);
  ASSERT_TRUE(report.has_value()) << "no RunReport logged for " << program;
  ASSERT_FALSE(report->labels.empty()) << program;
  for (const LabelReport& label : report->labels) {
    EXPECT_TRUE(label.bounded)
        << program << " label \"" << label.label << "\" has no bound";
    EXPECT_FALSE(label.violates_bound())
        << program << " label \"" << label.label << "\" peak "
        << label.peak_words << " vs bound " << label.bound_words;
    EXPECT_LE(label.headroom, 1.0) << program << " " << label.label;
  }
}

// ------------------------------------------------- declared cost coverage

// Every registered protocol runs with a CostModel whose bounds hold on a
// real execution — the acceptance criterion behind the lint rule and the
// verifier's CostModel requirement.
TEST(CostModels, AllSixRegisteredProtocolsRunBounded) {
  ReportLog::global().clear();

  {  // mpc.sample_sort (splitter tree)
    mpc::Cluster cluster(ClusterConfig{8, 8192}, nullptr);
    sample_sort(cluster, random_slabs(8, 32, 11));
    expect_bounded_clean("mpc.sample_sort");
  }
  {  // mpc.sample_sort, coordinator strategy (same report name)
    mpc::Cluster cluster(ClusterConfig{8, 8192}, nullptr);
    sample_sort(cluster, random_slabs(8, 32, 12), 8,
                mpc::SplitterStrategy::kCoordinator);
    expect_bounded_clean("mpc.sample_sort");
  }
  {  // mpc.sample_sort_records
    mpc::Cluster cluster(ClusterConfig{8, 8192}, nullptr);
    sample_sort_records(cluster, random_slabs(8, 32, 13), 2, 1);
    expect_bounded_clean("mpc.sample_sort_records");
  }
  {  // mpc.broadcast_tree + mpc.converge_sum
    mpc::Cluster cluster(ClusterConfig{8, 1024}, nullptr);
    mpc::broadcast_tree(cluster, 0, {1, 2, 3}, 2);
    expect_bounded_clean("mpc.broadcast_tree");
    mpc::converge_sum(cluster, 0, std::vector<Word>(8, 2), 2);
    expect_bounded_clean("mpc.converge_sum");
  }
  {  // mpc.fetch_bundles
    mpc::Cluster cluster(ClusterConfig{4, 4096}, nullptr);
    std::vector<std::vector<Word>> bundles(8);
    std::vector<std::vector<graph::VertexId>> requests(8);
    for (std::size_t v = 0; v < 8; ++v) {
      bundles[v] = {static_cast<Word>(v), static_cast<Word>(v + 100)};
      requests[v] = {static_cast<graph::VertexId>((v + 1) % 8),
                     static_cast<graph::VertexId>((v + 3) % 8)};
    }
    mpc::fetch_bundles_program(cluster, bundles, requests);
    expect_bounded_clean("mpc.fetch_bundles");
  }
  {  // local.embedded_peeling
    util::SplitRng rng(14);
    const graph::Graph g = graph::gnm(200, 600, rng);
    mpc::Cluster cluster(ClusterConfig{8, 1 << 14}, nullptr);
    const auto result = local::embedded_threshold_peeling(g, 6, cluster, 100);
    EXPECT_TRUE(result.complete);
    expect_bounded_clean("local.embedded_peeling");
  }
}

// ----------------------------------------------- RunReport determinism

// The structural subset of a RunReport (rounds, peaks, totals, bounds,
// headroom per label) is built from driver-side RoundStats, which are
// bit-identical on every backend — so the serialized structural document
// must not change across policies or transports.
TEST(RunReport, StructuralJsonIdenticalAcrossBackends) {
  std::vector<std::string> documents;
  for (const ExecutionPolicy& policy :
       {ExecutionPolicy::serial(), ExecutionPolicy::parallel(2)}) {
    for (const TransportConfig& transport :
         {TransportConfig{}, TransportConfig::loopback(2),
          TransportConfig::tcp(2)}) {
      ClusterConfig cfg{8, 4096};
      cfg.execution = policy;
      cfg.transport = transport;
      mpc::RoundLedger ledger(cfg);
      mpc::Cluster cluster(cfg, &ledger);
      ReportLog::global().clear();
      cluster.run_program(
          net::make_distributable_storm_program(storm_state(8, 16, 12, 9)));
      const auto report = ReportLog::global().last("net.storm");
      ASSERT_TRUE(report.has_value());
      EXPECT_FALSE(report->labels.empty());
      documents.push_back(report->structural_json());
    }
  }
  for (std::size_t i = 1; i < documents.size(); ++i)
    EXPECT_EQ(documents[i], documents[0]) << "backend " << i;
}

// --------------------------------------------------------- bound audit

/// Expect fn() to raise a VerifyError whose message contains every needle.
template <typename Fn>
void expect_bound_rejected(const Fn& fn,
                           const std::vector<std::string>& needles) {
  try {
    fn();
    FAIL() << "expected a bound-audit VerifyError";
  } catch (const check::VerifyError& e) {
    const std::string what = e.what();
    for (const std::string& needle : needles)
      EXPECT_NE(what.find(needle), std::string::npos)
          << "missing \"" << needle << "\" in: " << what;
  }
}

TEST(BoundAudit, UnderdeclaredProgramCaughtByNameOnEveryBackend) {
  for (const TransportConfig& transport :
       {TransportConfig{}, TransportConfig::loopback(2),
        TransportConfig::tcp(2)}) {
    ClusterConfig cfg{4, 256};
    cfg.transport = transport;
    cfg.execution = ExecutionPolicy::checked();
    mpc::Cluster cluster(cfg, nullptr);
    expect_bound_rejected(
        [&] { cluster.run_program(check::make_underdeclared_selfcheck(4)); },
        {"bound audit", "\"check.underdeclared\"",
         "\"check.underdeclared.step\"", "exceeds declared bound"});
  }
}

TEST(BoundAudit, UncheckedRunCountsTheViolationInsteadOfThrowing) {
  trace::MetricsRegistry& metrics = trace::Tracer::global().metrics();
  const std::uint64_t before =
      metrics.counter("obs.bound_violations").value_or(0);
  mpc::Cluster cluster(ClusterConfig{4, 256}, nullptr);
  cluster.run_program(check::make_underdeclared_selfcheck(4));  // no throw
  EXPECT_GT(metrics.counter("obs.bound_violations").value_or(0), before);
}

TEST(BoundAudit, EnforceBoundsNamesLabelAndFormula) {
  auto cost = std::make_shared<CostModel>("obs_test.program");
  cost->bound("obs_test.step", 10, 2, "10 words (test formula)");
  std::vector<LabelUsage> usage;
  usage.push_back({"obs_test.step", 1, 25, 25});
  const RunReport report = make_run_report("obs_test.program", "serial", 4,
                                           256, 0, usage, cost.get());
  ASSERT_EQ(report.labels.size(), 1u);
  EXPECT_TRUE(report.labels[0].violates_bound());
  EXPECT_GT(report.labels[0].headroom, 1.0);
  expect_bound_rejected(
      [&] { enforce_bounds(report, /*checked=*/true); },
      {"bound audit", "\"obs_test.program\"", "\"obs_test.step\"",
       "test formula"});
  EXPECT_EQ(enforce_bounds(report, /*checked=*/false), 1u);
}

// ------------------------------------------------------------ watchdog

TEST(Watchdog, FlagsAnArtificiallyStalledStep) {
  Watchdog& dog = Watchdog::global();
  const WatchdogConfig saved = dog.config();
  WatchdogConfig aggressive;
  aggressive.enabled = true;
  aggressive.factor = 2.0;
  aggressive.floor_ms = 20;
  dog.configure(aggressive);
  const std::uint64_t before = dog.stalls_flagged();

  // A few fast rounds seed the trailing median, then one step sleeps far
  // past max(floor, factor x median) so the monitor thread (polling every
  // ~10 ms) must flag it while it is still running.
  engine::RoundProgram program;
  for (int r = 0; r < 3; ++r)
    program.independent("obs_test.fast",
                        [](std::size_t m, const engine::InboxView&,
                           engine::Sender& send) {
                          send.send(m, std::vector<Word>{1});
                        });
  program.independent("obs_test.stall",
                      [](std::size_t m, const engine::InboxView&,
                         engine::Sender&) {
                        if (m == 0)
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(250));
                      });
  mpc::Cluster cluster(ClusterConfig{2, 64}, nullptr);
  cluster.run_program(program);

  EXPECT_GT(dog.stalls_flagged(), before);
  dog.configure(saved);
}

TEST(Watchdog, KnobParsesStrictly) {
  EXPECT_FALSE(parse_watchdog_flag("off", "ARBOR_WATCHDOG").enabled);
  const WatchdogConfig on = parse_watchdog_flag("on", "ARBOR_WATCHDOG");
  EXPECT_TRUE(on.enabled);
  EXPECT_DOUBLE_EQ(on.factor, 8.0);
  EXPECT_EQ(on.floor_ms, 100u);
  const WatchdogConfig tuned =
      parse_watchdog_flag("on:4:250", "ARBOR_WATCHDOG");
  EXPECT_DOUBLE_EQ(tuned.factor, 4.0);
  EXPECT_EQ(tuned.floor_ms, 250u);
  EXPECT_THROW(parse_watchdog_flag("sometimes", "ARBOR_WATCHDOG"),
               InvariantError);
  EXPECT_THROW(parse_watchdog_flag("on:0.5", "ARBOR_WATCHDOG"),
               InvariantError);
}

// ---------------------------------------------------- histogram drops

TEST(Metrics, HistogramDropCountSurfacesPastTheSampleCap) {
  trace::MetricsRegistry metrics;
  for (std::size_t i = 0; i < trace::kMaxHistogramSamples + 5; ++i)
    metrics.observe("obs_test.hist", 1.0);
  const auto hist = metrics.histogram("obs_test.hist");
  ASSERT_TRUE(hist.has_value());
  EXPECT_EQ(hist->count, trace::kMaxHistogramSamples + 5);
  EXPECT_EQ(hist->samples.size(), trace::kMaxHistogramSamples);
  EXPECT_EQ(hist->dropped(), 5u);
}

// ------------------------------------------------- pipeline ledger audit

TEST(PipelineBounds, RealLayeringRunAuditsCleanAgainstTheModel) {
  util::SplitRng rng(3);
  const graph::Graph g = graph::forest_union(300, 3, rng);
  const auto cfg =
      mpc::ClusterConfig::for_problem(g.num_vertices(), g.num_edges(), 0.6);
  mpc::RoundLedger ledger(cfg);
  mpc::MpcContext ctx(cfg, &ledger);
  const std::size_t k = core::estimate_density_parameter(g);
  const auto result =
      core::complete_layering(g, core::PipelineParams::practical(k), ctx);
  EXPECT_TRUE(result.assignment.is_complete());

  const auto model = pipeline_cost_model(g.num_vertices());
  const auto violations =
      audit_ledger_bounds(ledger.rounds_by_label(),
                          ledger.peak_traffic_by_label(), *model,
                          cfg.words_per_machine);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: " << violations.front();

  // The same ledger against a deliberately tiny model must be flagged.
  ASSERT_TRUE(ledger.rounds_by_label().count("layering.peel"));
  CostModel tiny("obs_test.tiny");
  tiny.bound("layering.peel", kWordsCapacity, 1,
             "1 round (deliberately tiny)");
  EXPECT_FALSE(audit_ledger_bounds(ledger.rounds_by_label(),
                                   ledger.peak_traffic_by_label(), tiny,
                                   cfg.words_per_machine)
                   .empty());
}

// ---------------------------------------------- verifier cost coverage

engine::StepFn noop_step() {
  return [](std::size_t, const engine::InboxView&, engine::Sender&) {};
}

TEST(CostVerifier, DistributableProgramsMustDeclareOrExempt) {
  check::VerifyContext ctx;
  ctx.machines = 4;
  ctx.capacity = 256;
  const auto make = [] {
    engine::RoundProgram program;
    program.barrier("obs_test.step", noop_step());
    engine::RemoteSpec spec;
    spec.name = "obs_test.program";
    program.distributable(std::move(spec));
    return program;
  };

  expect_bound_rejected([&] { check::verify_program(make(), ctx); },
                        {"no CostModel declared", "exempt_cost"});

  {  // a bound naming a step that does not exist
    engine::RoundProgram program = make();
    auto cost = std::make_shared<CostModel>("obs_test.model");
    cost->bound("obs_test.step", 1, 1, "1");
    cost->bound("obs_test.ghost", 1, 1, "1");
    program.costed(std::move(cost));
    expect_bound_rejected([&] { check::verify_program(program, ctx); },
                          {"\"obs_test.ghost\"", "names no step"});
  }
  {  // a step with no declared bound
    engine::RoundProgram program = make();
    program.costed(std::make_shared<CostModel>("obs_test.model"));
    expect_bound_rejected([&] { check::verify_program(program, ctx); },
                          {"\"obs_test.step\"", "no declared bound"});
  }
  {  // explicit opt-out passes
    engine::RoundProgram program = make();
    program.exempt_cost();
    check::verify_program(program, ctx);
  }
}

}  // namespace
}  // namespace arbor::obs
