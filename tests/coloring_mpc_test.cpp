// End-to-end tests for Theorem 1.2 (MPC coloring): properness, palette
// size O(λ log log n), the vertex-partition path, determinism, and the
// block/tail round accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/assert.hpp"
#include "core/coloring_mpc.hpp"
#include "graph/arboricity.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"

namespace arbor::core {
namespace {

using graph::Graph;

mpc::MpcContext make_ctx(const Graph& g, mpc::RoundLedger*& ledger_out,
                         double delta = 0.6) {
  const auto cfg = mpc::ClusterConfig::for_problem(
      g.num_vertices(), g.num_edges(), delta);
  static thread_local std::vector<std::unique_ptr<mpc::RoundLedger>> keep;
  keep.push_back(std::make_unique<mpc::RoundLedger>(cfg));
  ledger_out = keep.back().get();
  return mpc::MpcContext(cfg, ledger_out);
}

TEST(MpcColor, ProperOnForestUnions) {
  util::SplitRng rng(1);
  for (std::size_t lambda : {1u, 2u, 4u}) {
    const Graph g = graph::forest_union(600, lambda, rng);
    mpc::RoundLedger* ledger = nullptr;
    auto ctx = make_ctx(g, ledger);
    const MpcColoringResult result = mpc_color(g, {}, ctx);
    const auto check = graph::check_coloring(g, result.colors);
    EXPECT_TRUE(check.proper) << "λ=" << lambda;
    EXPECT_LE(check.colors_used, result.palette_size);
  }
}

TEST(MpcColor, PaletteIsLambdaLogLogShaped) {
  util::SplitRng rng(2);
  for (std::size_t lambda : {1u, 2u, 4u, 8u}) {
    const Graph g = graph::forest_union(800, lambda, rng);
    mpc::RoundLedger* ledger = nullptr;
    auto ctx = make_ctx(g, ledger);
    const MpcColoringResult result = mpc_color(g, {}, ctx);
    const double loglog =
        std::log2(std::log2(static_cast<double>(g.num_vertices())));
    EXPECT_LE(static_cast<double>(result.palette_size),
              3.0 * 24.0 * static_cast<double>(lambda) * loglog)
        << "λ=" << lambda;
  }
}

TEST(MpcColor, StarUsesFewColorsDespiteHugeDegree) {
  // The paper's motivating example: Δ = n-1 but λ = 1, so the palette must
  // stay tiny even though a Δ-based algorithm would use ~n colors.
  const Graph g = graph::star(2000);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  const MpcColoringResult result = mpc_color(g, {}, ctx);
  EXPECT_TRUE(graph::check_coloring(g, result.colors).proper);
  EXPECT_LE(result.palette_size, 64u);  // vs Δ+1 = 2000
}

TEST(MpcColor, HighArboricityTakesVertexPartitionPath) {
  const Graph g = graph::clique(200);  // λ = 100
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  const MpcColoringResult result = mpc_color(g, {}, ctx);
  EXPECT_GT(result.parts, 1u);
  const auto check = graph::check_coloring(g, result.colors);
  EXPECT_TRUE(check.proper);
  // A clique needs ≥ n colors; sanity: palette covers it but stays O(n).
  EXPECT_GE(result.palette_size, 200u);
  EXPECT_LE(result.palette_size, 200u * 24u);
}

TEST(MpcColor, GnmProper) {
  util::SplitRng rng(3);
  const Graph g = graph::gnm(1000, 4000, rng);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  const MpcColoringResult result = mpc_color(g, {}, ctx);
  EXPECT_TRUE(graph::check_coloring(g, result.colors).proper);
}

TEST(MpcColor, DeterministicForFixedSeed) {
  util::SplitRng rng(4);
  const Graph g = graph::forest_union(400, 3, rng);
  mpc::RoundLedger* l1 = nullptr;
  auto c1 = make_ctx(g, l1);
  const auto r1 = mpc_color(g, {}, c1);
  mpc::RoundLedger* l2 = nullptr;
  auto c2 = make_ctx(g, l2);
  const auto r2 = mpc_color(g, {}, c2);
  EXPECT_EQ(r1.colors, r2.colors);
  EXPECT_EQ(l1->total_rounds(), l2->total_rounds());
}

TEST(MpcColor, SeedChangesColoring) {
  util::SplitRng rng(5);
  const Graph g = graph::gnm(500, 1500, rng);
  mpc::RoundLedger* l1 = nullptr;
  auto c1 = make_ctx(g, l1);
  ColoringParams p1;
  p1.seed = 111;
  const auto r1 = mpc_color(g, p1, c1);
  mpc::RoundLedger* l2 = nullptr;
  auto c2 = make_ctx(g, l2);
  ColoringParams p2;
  p2.seed = 222;
  const auto r2 = mpc_color(g, p2, c2);
  EXPECT_NE(r1.colors, r2.colors);
  EXPECT_TRUE(graph::check_coloring(g, r1.colors).proper);
  EXPECT_TRUE(graph::check_coloring(g, r2.colors).proper);
}

TEST(MpcColor, BlockAndTailAccountingPopulated) {
  util::SplitRng rng(6);
  const Graph g = graph::forest_union(5000, 2, rng);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  const MpcColoringResult result = mpc_color(g, {}, ctx);
  EXPECT_TRUE(graph::check_coloring(g, result.colors).proper);
  // A graph with > tail_threshold layers must have used at least one block.
  EXPECT_GE(result.blocks, 1u);
  EXPECT_GT(result.local_rounds_replayed, 0u);
  EXPECT_GT(ledger->rounds_by_label().count("color.block_gather"), 0u);
}

TEST(MpcColor, EmptyAndEdgelessGraphs) {
  mpc::RoundLedger* ledger = nullptr;
  const Graph none = graph::GraphBuilder(0).build();
  auto c0 = make_ctx(none, ledger);
  EXPECT_TRUE(mpc_color(none, {}, c0).colors.empty());

  const Graph isolated = graph::GraphBuilder(7).build();
  auto c1 = make_ctx(isolated, ledger);
  const auto result = mpc_color(isolated, {}, c1);
  EXPECT_TRUE(graph::check_coloring(isolated, result.colors).proper);
}

TEST(MpcColor, PaletteFactorIsHonored) {
  util::SplitRng rng(7);
  const Graph g = graph::forest_union(300, 2, rng);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  ColoringParams params;
  params.palette_factor = 5.0;
  const MpcColoringResult result = mpc_color(g, params, ctx);
  EXPECT_TRUE(graph::check_coloring(g, result.colors).proper);
  EXPECT_GE(result.palette_size, 5u * result.layering_outdegree);
}

}  // namespace
}  // namespace arbor::core
