// Tests for the workload generators: structural invariants and the
// controlled-arboricity guarantees the experiments rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "graph/arboricity.hpp"
#include "graph/generators.hpp"
#include "graph/union_find.hpp"
#include "util/rng.hpp"

namespace arbor::graph {
namespace {

bool is_acyclic(const Graph& g) {
  UnionFind uf(g.num_vertices());
  for (const Edge& e : g.edges())
    if (!uf.unite(e.u, e.v)) return false;
  return true;
}

TEST(Gnm, ExactEdgeCount) {
  util::SplitRng rng(1);
  const Graph g = gnm(100, 250, rng);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 250u);
}

TEST(Gnm, RejectsTooManyEdges) {
  util::SplitRng rng(1);
  EXPECT_THROW(gnm(4, 7, rng), arbor::InvariantError);
}

TEST(Gnm, FullDensityIsClique) {
  util::SplitRng rng(2);
  const Graph g = gnm(6, 15, rng);
  EXPECT_EQ(g.num_edges(), 15u);
  for (VertexId u = 0; u < 6; ++u)
    for (VertexId v = u + 1; v < 6; ++v) EXPECT_TRUE(g.has_edge(u, v));
}

TEST(Gnp, EdgeCountConcentrates) {
  util::SplitRng rng(3);
  const std::size_t n = 400;
  const double p = 0.05;
  const Graph g = gnp(n, p, rng);
  const double expected = p * static_cast<double>(n * (n - 1) / 2);
  EXPECT_GT(static_cast<double>(g.num_edges()), expected * 0.85);
  EXPECT_LT(static_cast<double>(g.num_edges()), expected * 1.15);
}

TEST(Gnp, ZeroAndOneProbability) {
  util::SplitRng rng(4);
  EXPECT_EQ(gnp(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(RandomForest, IsAcyclic) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    util::SplitRng rng(seed);
    const Graph g = random_forest(500, rng);
    EXPECT_TRUE(is_acyclic(g)) << "seed " << seed;
    EXPECT_LE(g.num_edges(), 499u);
  }
}

TEST(RandomForest, SpanningWhenNoExtraRoots) {
  util::SplitRng rng(9);
  const Graph g = random_forest(200, rng, /*root_prob=*/0.0);
  EXPECT_EQ(g.num_edges(), 199u);  // a single tree
  EXPECT_TRUE(is_acyclic(g));
}

TEST(ForestUnion, ArboricityAtMostK) {
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    util::SplitRng rng(100 + k);
    const Graph g = forest_union(300, k, rng);
    const ArboricityBounds bounds = arboricity_bounds(g);
    EXPECT_LE(bounds.lower, k) << "k=" << k;
    // Degeneracy of a union of k forests is at most 2k-1.
    EXPECT_LE(bounds.upper, 2 * k) << "k=" << k;
  }
}

TEST(ForestUnion, NearlyKnEdges) {
  util::SplitRng rng(42);
  const std::size_t n = 400, k = 6;
  const Graph g = forest_union(n, k, rng);
  // Each forest is spanning (n-1 edges); dedup removes only collisions.
  EXPECT_GT(g.num_edges(), k * (n - 1) * 9 / 10);
  EXPECT_LE(g.num_edges(), k * (n - 1));
}

TEST(Star, Shape) {
  const Graph g = star(10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 9u);
  EXPECT_EQ(g.max_degree(), 9u);
  EXPECT_EQ(arboricity_bounds(g).upper, 1u);  // degeneracy 1
}

TEST(PathAndCycle, Shape) {
  EXPECT_EQ(path(10).num_edges(), 9u);
  EXPECT_EQ(cycle(10).num_edges(), 10u);
  EXPECT_EQ(cycle(2).num_edges(), 1u);
  EXPECT_EQ(cycle(1).num_edges(), 0u);
  EXPECT_TRUE(is_acyclic(path(10)));
  EXPECT_FALSE(is_acyclic(cycle(10)));
}

TEST(Clique, Shape) {
  const Graph g = clique(7);
  EXPECT_EQ(g.num_edges(), 21u);
  EXPECT_EQ(g.max_degree(), 6u);
  EXPECT_EQ(degeneracy(g), 6u);
}

TEST(CompleteBipartite, Shape) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(g.degree(0), 4u);   // left side
  EXPECT_EQ(g.degree(3), 3u);   // right side
}

TEST(Grid, ShapeAndDegeneracy) {
  const Graph g = grid(5, 8);
  EXPECT_EQ(g.num_vertices(), 40u);
  EXPECT_EQ(g.num_edges(), 5u * 7 + 4u * 8);
  EXPECT_EQ(degeneracy(g), 2u);
}

TEST(PlantedClique, DensityDominatedByClique) {
  util::SplitRng rng(7);
  const Graph g = planted_clique(500, 500, 30, rng);
  const DensestSubgraph ds = exact_densest_subgraph(g);
  // Clique density (30-1)/2 = 14.5; background G(500,500) density ≈ 1.
  EXPECT_GT(ds.density, 12.0);
}

TEST(BarabasiAlbert, SizeAndMinDegree) {
  util::SplitRng rng(8);
  const Graph g = barabasi_albert(300, 3, rng);
  EXPECT_EQ(g.num_vertices(), 300u);
  for (VertexId v = 4; v < 300; ++v) EXPECT_GE(g.degree(v), 3u);
  // Arboricity of BA(m=3) stays near 3.
  EXPECT_LE(degeneracy(g), 6u);
}

TEST(RelabelRandomly, PreservesDegreeMultiset) {
  util::SplitRng rng(10);
  const Graph g = gnm(200, 600, rng);
  const Graph h = relabel_randomly(g, rng);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  std::vector<std::size_t> dg, dh;
  for (VertexId v = 0; v < 200; ++v) {
    dg.push_back(g.degree(v));
    dh.push_back(h.degree(v));
  }
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
}

TEST(Generators, Deterministic) {
  util::SplitRng a(123), b(123);
  const Graph g1 = gnm(100, 200, a);
  const Graph g2 = gnm(100, 200, b);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  const auto e1 = g1.edges();
  const auto e2 = g2.edges();
  for (std::size_t i = 0; i < e1.size(); ++i) EXPECT_EQ(e1[i], e2[i]);
}

// Parameterized sweep: forest unions hit their arboricity target closely
// (the E2 workload contract).
class ForestUnionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForestUnionSweep, DegeneracySandwich) {
  const std::size_t k = GetParam();
  util::SplitRng rng(1000 + k);
  const Graph g = forest_union(256, k, rng);
  const std::size_t d = degeneracy(g);
  EXPECT_GE(d, k / 2);      // not degenerate far below target
  EXPECT_LE(d, 2 * k);      // arboricity ≤ k ⇒ degeneracy ≤ 2k-1
}

INSTANTIATE_TEST_SUITE_P(Arboricity, ForestUnionSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

}  // namespace
}  // namespace arbor::graph
