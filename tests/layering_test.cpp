// Tests for (partial) layer assignments: Definitions 2.1/2.2, Claim 2.3
// (min-combine), Lemma 2.4 (path-count bound), tail counts, and the
// reference peeling layering.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include <cmath>

#include "core/layering.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace arbor::core {
namespace {

using graph::Graph;
using graph::VertexId;

LayerAssignment make_assignment(std::vector<Layer> layers, Layer l) {
  LayerAssignment a;
  a.layer = std::move(layers);
  a.num_layers = l;
  return a;
}

TEST(LayerAssignment, AssignedCountAndCompleteness) {
  const auto a = make_assignment({1, 2, kInfiniteLayer}, 2);
  EXPECT_EQ(a.assigned_count(), 2u);
  EXPECT_FALSE(a.is_complete());
  const auto b = make_assignment({1, 1}, 1);
  EXPECT_TRUE(b.is_complete());
}

TEST(AssignmentOutdegree, CountsHigherOrEqualNeighbors) {
  // Star center at layer 1, leaves at layer 2: center sees all leaves as
  // higher, leaves see only the center which is lower.
  const Graph g = graph::star(5);
  std::vector<Layer> layers{1, 2, 2, 2, 2};
  EXPECT_EQ(assignment_outdegree(g, make_assignment(layers, 2)), 4u);
  // Flip: center high, leaves low → out-degree 1 (each leaf sees center).
  std::vector<Layer> flipped{2, 1, 1, 1, 1};
  EXPECT_EQ(assignment_outdegree(g, make_assignment(flipped, 2)), 1u);
}

TEST(AssignmentOutdegree, InfinityCountsAsHigher) {
  const Graph g = graph::path(3);  // 0-1-2
  std::vector<Layer> layers{1, kInfiniteLayer, 1};
  // Vertex 0 and 2 each see vertex 1 at ∞ ≥ their layer; vertex 1 exempt.
  EXPECT_EQ(assignment_outdegree(g, make_assignment(layers, 1)), 1u);
}

TEST(AssignmentOutdegree, InfiniteVerticesExempt) {
  const Graph g = graph::star(6);
  std::vector<Layer> layers{kInfiniteLayer, 1, 1, 1, 1, 1};
  // Center at ∞ has 5 same-or-higher neighbors but is exempt; leaves see
  // the ∞ center → out-degree 1.
  EXPECT_EQ(assignment_outdegree(g, make_assignment(layers, 1)), 1u);
}

TEST(ValidPartialAssignment, RejectsOutOfRangeLayer) {
  const Graph g = graph::path(2);
  EXPECT_FALSE(
      is_valid_partial_assignment(g, make_assignment({0, 1}, 1), 5));
  EXPECT_FALSE(
      is_valid_partial_assignment(g, make_assignment({3, 1}, 2), 5));
  EXPECT_TRUE(
      is_valid_partial_assignment(g, make_assignment({2, 1}, 2), 5));
}

// Claim 2.3, exact statement: min of two valid partial assignments with
// the same L and d is valid with the same L and d. Property-tested over
// random assignments derived from peelings.
TEST(MinCombine, Claim23OnRandomGraphs) {
  util::SplitRng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gnm(120, 360, rng);
    // Two independent valid assignments: peel with different thresholds,
    // then truncate to the same L.
    LayerAssignment a = reference_peeling_layering(g, 12);
    LayerAssignment b = reference_peeling_layering(g, 16);
    const Layer l = std::min(a.num_layers, b.num_layers);
    for (auto& x : a.layer)
      if (x != kInfiniteLayer && x > l) x = kInfiniteLayer;
    for (auto& x : b.layer)
      if (x != kInfiniteLayer && x > l) x = kInfiniteLayer;
    a.num_layers = b.num_layers = l;

    const std::size_t da = assignment_outdegree(g, a);
    const std::size_t db = assignment_outdegree(g, b);
    const std::size_t d = std::max(da, db);
    ASSERT_TRUE(is_valid_partial_assignment(g, a, d));
    ASSERT_TRUE(is_valid_partial_assignment(g, b, d));

    const LayerAssignment combined = min_combine(a, b);
    EXPECT_TRUE(is_valid_partial_assignment(g, combined, d))
        << "Claim 2.3 violated on trial " << trial;
  }
}

TEST(MinCombine, InfinityYieldsOther) {
  const auto a = make_assignment({kInfiniteLayer, 3}, 3);
  const auto b = make_assignment({2, kInfiniteLayer}, 3);
  const LayerAssignment c = min_combine(a, b);
  EXPECT_EQ(c.layer[0], 2u);
  EXPECT_EQ(c.layer[1], 3u);
}

TEST(TailLayerCounts, SuffixSumsCorrect) {
  const auto a = make_assignment({1, 1, 2, 3, kInfiniteLayer}, 3);
  const auto tail = tail_layer_counts(a);
  // tail[j] = |{v : ℓ(v) ≥ j}|; ∞ counts everywhere.
  EXPECT_EQ(tail[1], 5u);
  EXPECT_EQ(tail[2], 3u);
  EXPECT_EQ(tail[3], 2u);
  EXPECT_EQ(tail[4], 1u);  // only the ∞ vertex
}

TEST(NumPaths, HandComputedChain) {
  // Path 0-1-2 with layers 1,2,3: paths ending at 2 are (2), (1,2),
  // (0,1,2) → 3. Paths ending at 0: just (0).
  const Graph g = graph::path(3);
  const auto a = make_assignment({1, 2, 3}, 3);
  const auto in = num_paths_in(g, a);
  EXPECT_EQ(in[0], 1u);
  EXPECT_EQ(in[1], 2u);
  EXPECT_EQ(in[2], 3u);
  const auto out = num_paths_out(g, a);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[2], 1u);
}

TEST(NumPaths, DiamondMultiplicity) {
  // 0 at layer 1; 1,2 at layer 2; 3 at layer 3; edges 0-1,0-2,1-3,2-3.
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto a = make_assignment({1, 2, 2, 3}, 3);
  const auto in = num_paths_in(g, a);
  // Ending at 3: (3), (1,3), (2,3), (0,1,3), (0,2,3) = 5.
  EXPECT_EQ(in[3], 5u);
}

TEST(NumPaths, InfiniteVerticesExcluded) {
  const Graph g = graph::path(3);
  const auto a = make_assignment({1, kInfiniteLayer, 2}, 2);
  const auto in = num_paths_in(g, a);
  EXPECT_EQ(in[1], 0u);  // ∞ vertex: no strictly increasing path ends here
  EXPECT_EQ(in[2], 1u);  // only (2): its neighbor is ∞
}

TEST(NumPaths, SameLayerEdgesDoNotCount) {
  const Graph g = graph::path(2);
  const auto a = make_assignment({1, 1}, 1);
  const auto in = num_paths_in(g, a);
  EXPECT_EQ(in[0], 1u);
  EXPECT_EQ(in[1], 1u);
}

TEST(NumPaths, DoubleCountingIdentityLemma24) {
  // Σ_v NumPathsIn(v) = Σ_v NumPathsOut(v) (every path counted once each
  // way), and both ≤ n·d^L.
  util::SplitRng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = graph::forest_union(100, 3, rng);
    const LayerAssignment a = reference_peeling_layering(g, 12);
    ASSERT_TRUE(a.is_complete());
    const std::size_t d = assignment_outdegree(g, a);
    const auto in = num_paths_in(g, a);
    const auto out = num_paths_out(g, a);
    long double sum_in = 0, sum_out = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      sum_in += in[v];
      sum_out += out[v];
    }
    EXPECT_EQ(sum_in, sum_out);
    const long double bound =
        static_cast<long double>(g.num_vertices()) *
        std::pow(static_cast<long double>(std::max<std::size_t>(d, 2)),
                 static_cast<long double>(a.num_layers));
    EXPECT_LE(sum_in, bound) << "Lemma 2.4 bound violated";
  }
}

TEST(ReferencePeeling, CompleteAndValidOnSparseGraphs) {
  util::SplitRng rng(3);
  const Graph g = graph::forest_union(300, 4, rng);
  const LayerAssignment a = reference_peeling_layering(g, 16);
  EXPECT_TRUE(a.is_complete());
  EXPECT_LE(assignment_outdegree(g, a), 16u);
}

TEST(ReferencePeeling, IncompleteOnDenseCore) {
  const Graph g = graph::clique(10);  // min degree 9
  const LayerAssignment a = reference_peeling_layering(g, 4);
  EXPECT_FALSE(a.is_complete());
  EXPECT_EQ(a.assigned_count(), 0u);
}

// Parameterized: the reference layering's layer count is ≤ log-ish in n
// when the threshold is at least twice the average degree.
class PeelingLayersSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PeelingLayersSweep, LayerCountLogarithmic) {
  const auto [n, k] = GetParam();
  util::SplitRng rng(n + k);
  const Graph g = graph::forest_union(n, k, rng);
  const LayerAssignment a = reference_peeling_layering(g, 4 * k);
  ASSERT_TRUE(a.is_complete());
  const double log_n = std::log2(static_cast<double>(n));
  EXPECT_LE(a.num_layers, static_cast<Layer>(3.0 * log_n + 4));
}

INSTANTIATE_TEST_SUITE_P(
    Growth, PeelingLayersSweep,
    ::testing::Combine(::testing::Values(128, 512, 2048),
                       ::testing::Values(1, 2, 4)));

}  // namespace
}  // namespace arbor::core
