// Tests for the MPC simulation framework: config derivation, ledger
// accounting, Level-0 cluster semantics (including a real bucketed
// distributed sort that stays within the per-round traffic caps — the
// grounding for the Level-1 analytic costs), primitives, distributed graph
// storage, and the Lemma 4.1 bundle-fetch.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/assert.hpp"
#include "graph/generators.hpp"
#include "mpc/bundle_fetch.hpp"
#include "mpc/cluster.hpp"
#include "mpc/config.hpp"
#include "mpc/dist_graph.hpp"
#include "mpc/ledger.hpp"
#include "mpc/primitives.hpp"
#include "util/rng.hpp"

namespace arbor::mpc {
namespace {

TEST(ClusterConfig, DerivesSublinearMemory) {
  const auto cfg = ClusterConfig::for_problem(1 << 20, 1 << 22, 0.5);
  EXPECT_GE(cfg.words_per_machine, 1000u);  // ~ 2^10
  EXPECT_LE(cfg.words_per_machine, 1100u);
  EXPECT_GE(cfg.global_words(), (1u << 22));
}

TEST(ClusterConfig, MinWordsFloorApplies) {
  const auto cfg = ClusterConfig::for_problem(16, 32, 0.3);
  EXPECT_GE(cfg.words_per_machine, 256u);
}

TEST(ClusterConfig, RejectsBadDelta) {
  EXPECT_THROW(ClusterConfig::for_problem(100, 100, 0.0),
               arbor::InvariantError);
  EXPECT_THROW(ClusterConfig::for_problem(100, 100, 1.5),
               arbor::InvariantError);
}

TEST(RoundLedger, ChargesAndLabels) {
  RoundLedger ledger(ClusterConfig{4, 100});
  ledger.charge(3, "sort");
  ledger.charge(2, "sort");
  ledger.charge(1, "shuffle");
  EXPECT_EQ(ledger.total_rounds(), 6u);
  EXPECT_EQ(ledger.rounds_by_label().at("sort"), 5u);
  EXPECT_EQ(ledger.rounds_by_label().at("shuffle"), 1u);
}

TEST(RoundLedger, RecordsViolationsWhenNotStrict) {
  RoundLedger ledger(ClusterConfig{4, 100});
  ledger.note_local_words(150);
  EXPECT_EQ(ledger.local_violations(), 1u);
  EXPECT_EQ(ledger.peak_local_words(), 150u);
}

TEST(RoundLedger, StrictModeThrows) {
  RoundLedger ledger(ClusterConfig{4, 100}, /*strict=*/true);
  EXPECT_THROW(ledger.note_local_words(150), arbor::InvariantError);
}

TEST(RoundLedger, ParallelAbsorbTakesMaxRoundsSumGlobal) {
  RoundLedger a(ClusterConfig{4, 100});
  a.charge(5, "x");
  a.note_global_words(50);
  RoundLedger b(ClusterConfig{4, 100});
  b.charge(3, "x");
  b.note_global_words(70);
  a.absorb_parallel(b);
  EXPECT_EQ(a.total_rounds(), 5u);
  EXPECT_EQ(a.peak_global_words(), 120u);
}

TEST(RoundLedger, SequentialAbsorbSumsRounds) {
  RoundLedger a(ClusterConfig{4, 100});
  a.charge(5, "x");
  RoundLedger b(ClusterConfig{4, 100});
  b.charge(3, "y");
  a.absorb_sequential(b);
  EXPECT_EQ(a.total_rounds(), 8u);
}

TEST(Cluster, DeliversMessagesBetweenMachines) {
  RoundLedger ledger(ClusterConfig{3, 64});
  Cluster cluster(ClusterConfig{3, 64}, &ledger);
  cluster.preload(0, {42});
  cluster.run_round([](std::size_t m, const auto& inbox, Sender& send) {
    // Machine 0 forwards its preloaded word to machine 2.
    if (m == 0 && !inbox.empty()) send.send(2, {inbox[0][0] + 1});
  });
  ASSERT_EQ(cluster.inbox(2).size(), 1u);
  EXPECT_EQ(cluster.inbox(2)[0][0], 43u);
  EXPECT_EQ(cluster.rounds_executed(), 1u);
  EXPECT_EQ(ledger.total_rounds(), 1u);
}

TEST(Cluster, SendCapacityEnforced) {
  Cluster cluster(ClusterConfig{2, 4}, nullptr);
  EXPECT_THROW(
      cluster.run_round([](std::size_t m, const auto&, Sender& send) {
        if (m == 0) send.send(1, {1, 2, 3, 4, 5});  // 5 > 4 words
      }),
      arbor::InvariantError);
}

TEST(Cluster, ReceiveCapacityEnforced) {
  Cluster cluster(ClusterConfig{3, 4}, nullptr);
  EXPECT_THROW(
      cluster.run_round([](std::size_t m, const auto&, Sender& send) {
        // Both senders fit individually, but machine 2 receives 6 words.
        if (m == 0) send.send(2, {1, 2, 3});
        if (m == 1) send.send(2, {4, 5, 6});
      }),
      arbor::InvariantError);
}

// A real distributed bucket sort on the Level-0 cluster: values are routed
// to machines by range, sorted locally, and the concatenation must be
// globally sorted — all without tripping the traffic caps. This grounds
// the O(1)-round sort cost the Level-1 primitives charge.
TEST(Cluster, DistributedBucketSortWorksWithinCaps) {
  const std::size_t machines = 8;
  const std::size_t capacity = 64;
  Cluster cluster(ClusterConfig{machines, capacity}, nullptr);

  // Each machine starts with 16 random words in [0, 256).
  util::SplitRng rng(99);
  std::vector<std::vector<Word>> initial(machines);
  std::vector<Word> all;
  for (std::size_t m = 0; m < machines; ++m) {
    for (int i = 0; i < 16; ++i) {
      initial[m].push_back(rng.next_below(256));
      all.push_back(initial[m].back());
    }
    cluster.preload(m, initial[m]);
  }

  // Round 1: route each word to bucket = value / 32.
  cluster.run_round([&](std::size_t, const auto& inbox, Sender& send) {
    std::vector<std::vector<Word>> outgoing(machines);
    for (const auto& msg : inbox)
      for (Word w : msg) outgoing[w / 32].push_back(w);
    for (std::size_t dst = 0; dst < machines; ++dst)
      if (!outgoing[dst].empty()) send.send(dst, std::move(outgoing[dst]));
  });

  // Local sort + verification: concatenation across machines is sorted.
  std::vector<Word> result;
  for (std::size_t m = 0; m < machines; ++m) {
    std::vector<Word> local;
    for (const auto& msg : cluster.inbox(m))
      for (Word w : msg) local.push_back(w);
    std::sort(local.begin(), local.end());
    for (Word w : local) {
      EXPECT_GE(w, m * 32);
      EXPECT_LT(w, (m + 1) * 32);
    }
    result.insert(result.end(), local.begin(), local.end());
  }
  EXPECT_TRUE(std::is_sorted(result.begin(), result.end()));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(result, all);
}

TEST(MpcContext, SortRoundsMatchLogFormula) {
  RoundLedger ledger(ClusterConfig{16, 1024});
  MpcContext ctx(ClusterConfig{16, 1024}, &ledger);
  EXPECT_EQ(ctx.sort_rounds(1), 1u);
  EXPECT_EQ(ctx.sort_rounds(1024), 1u);
  EXPECT_EQ(ctx.sort_rounds(1 << 20), 2u);   // log_1024(2^20) = 2
  EXPECT_EQ(ctx.sort_rounds(1u << 31), 4u);  // ⌈31/10⌉ = 4
}

// Regression: sort_rounds used to compute ⌈log_S N⌉ through a floating-
// point log ratio, which an ulp of error can push over the ceiling at
// exact powers of S. The integer powering must be exact at N = S^k and at
// N = S^k ± 1, for any S.
TEST(MpcContext, SortRoundsExactAtPowersOfS) {
  MpcContext ctx(ClusterConfig{16, 1024}, nullptr);
  const std::size_t s = 1024;
  EXPECT_EQ(ctx.sort_rounds(s), 1u);
  EXPECT_EQ(ctx.sort_rounds(s + 1), 2u);
  EXPECT_EQ(ctx.sort_rounds(s * s - 1), 2u);
  EXPECT_EQ(ctx.sort_rounds(s * s), 2u);          // N = S² is exactly 2
  EXPECT_EQ(ctx.sort_rounds(s * s + 1), 3u);
  EXPECT_EQ(ctx.sort_rounds(s * s * s), 3u);      // N = S³ is exactly 3
  EXPECT_EQ(ctx.sort_rounds(s * s * s + 1), 4u);

  // Non-power-of-two S hits the float drift hardest.
  MpcContext odd(ClusterConfig{16, 1000}, nullptr);
  EXPECT_EQ(odd.sort_rounds(1000u * 1000u), 2u);
  EXPECT_EQ(odd.sort_rounds(1000u * 1000u * 1000u), 3u);

  // Degenerate one-word machines clamp the base to 2 instead of dividing
  // by log(1) = 0; huge N terminates via the saturating power.
  MpcContext tiny(ClusterConfig{2, 1}, nullptr);
  EXPECT_EQ(tiny.sort_rounds(8), 3u);
  EXPECT_LE(ctx.sort_rounds(std::numeric_limits<std::size_t>::max()), 7u);
}

TEST(MpcContext, SortItemsSortsAndCharges) {
  const ClusterConfig cfg{16, 256};
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  std::vector<int> items{5, 3, 9, 1};
  ctx.sort_items(items, std::less<int>{}, 1, "sort.test");
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
  EXPECT_GE(ledger.rounds_by_label().at("sort.test"), 1u);
}

TEST(MpcContext, AggregateByKeyCombines) {
  const ClusterConfig cfg{16, 256};
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  std::vector<std::pair<int, int>> items{{2, 5}, {1, 3}, {2, 7}, {1, 1}};
  const auto out = ctx.aggregate_by_key<int, int>(
      items, [](int a, int b) { return a + b; }, 2, "agg");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (std::pair<int, int>{1, 4}));
  EXPECT_EQ(out[1], (std::pair<int, int>{2, 12}));
}

TEST(MpcContext, CountByKey) {
  const ClusterConfig cfg{16, 256};
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  const auto out =
      ctx.count_by_key<int>({3, 1, 3, 3, 1}, "count");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (std::pair<int, std::size_t>{1, 2}));
  EXPECT_EQ(out[1], (std::pair<int, std::size_t>{3, 3}));
}

TEST(DistributedGraph, StorageAccounting) {
  util::SplitRng rng(1);
  const graph::Graph g = graph::gnm(500, 1500, rng);
  const ClusterConfig cfg = ClusterConfig::for_problem(500, 1500, 0.6);
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  const DistributedGraph dg(g, ctx);
  // Total storage = n vertex records + 2m adjacency entries.
  EXPECT_EQ(dg.total_storage_words(), 500u + 2 * 1500u);
  EXPECT_GE(ledger.peak_global_words(), dg.total_storage_words());
  std::size_t sum = 0;
  for (std::size_t m = 0; m < cfg.num_machines; ++m)
    sum += dg.storage_words(m);
  EXPECT_EQ(sum, dg.total_storage_words());
  EXPECT_LE(dg.max_storage_words(), dg.total_storage_words());
}

TEST(BundleFetch, DeliversRequestedBundles) {
  const ClusterConfig cfg{8, 1024};
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  std::vector<std::vector<Word>> bundles{{10}, {20, 21}, {30}};
  std::vector<std::vector<graph::VertexId>> requests{{1, 2}, {}, {0}};
  const auto result = fetch_bundles(ctx, bundles, requests, "fetch");
  ASSERT_EQ(result.delivered.size(), 3u);
  ASSERT_EQ(result.delivered[0].size(), 2u);
  EXPECT_EQ(result.delivered[0][0], (std::vector<Word>{20, 21}));
  EXPECT_EQ(result.delivered[0][1], (std::vector<Word>{30}));
  EXPECT_EQ(result.delivered[2][0], (std::vector<Word>{10}));
  EXPECT_TRUE(result.delivered[1].empty());
}

TEST(BundleFetch, StatsReflectVolumes) {
  const ClusterConfig cfg{8, 1024};
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  std::vector<std::vector<Word>> bundles{{1, 2, 3}, {4}};
  std::vector<std::vector<graph::VertexId>> requests{{0, 1}, {0}};
  const auto result = fetch_bundles(ctx, bundles, requests, "fetch");
  EXPECT_EQ(result.stats.max_request_list, 2u);
  EXPECT_EQ(result.stats.max_bundle_words, 3u);
  EXPECT_EQ(result.stats.max_copies, 2u);  // bundle 0 requested twice
  EXPECT_EQ(result.stats.total_delivered_words, 3u + 3u + 1u);
  EXPECT_EQ(result.stats.max_requester_words, 4u);  // requester 0: 3+1
  EXPECT_GE(ledger.total_rounds(), result.stats.rounds_charged);
}

TEST(BundleFetch, RejectsUnknownVertex) {
  const ClusterConfig cfg{8, 1024};
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  std::vector<std::vector<Word>> bundles{{1}};
  std::vector<std::vector<graph::VertexId>> requests{{5}};
  EXPECT_THROW(fetch_bundles(ctx, bundles, requests, "fetch"),
               arbor::InvariantError);
}

}  // namespace
}  // namespace arbor::mpc
