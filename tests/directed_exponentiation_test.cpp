// Tests for the executable directed exponentiation (the §4 gather):
// reach-sets must equal BFS ground truth along non-decreasing-layer paths,
// doubling must cover radius R in ⌈log2 R⌉ fetches, and overflow caps must
// engage instead of blowing past the memory budget. Also covers TreeView
// wire-format round-trips (the Algorithm 2 payloads).
#include <gtest/gtest.h>

#include <deque>
#include <set>

#include "util/assert.hpp"
#include "core/directed_exponentiation.hpp"
#include "core/layering_pipeline.hpp"
#include "core/local_prune.hpp"
#include "core/orientation_mpc.hpp"
#include "core/tree_view.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"

namespace arbor::core {
namespace {

using graph::Graph;
using graph::VertexId;

mpc::ClusterConfig test_config() { return mpc::ClusterConfig{64, 65536}; }

/// Ground truth: BFS from `start` along v→w with ℓ(v) ≤ ℓ(w) ≤ hi,
/// restricted to layers [lo, hi], up to `radius` hops.
std::set<VertexId> bfs_truth(const Graph& g, const LayerAssignment& ell,
                             VertexId start, Layer lo, Layer hi,
                             std::size_t radius) {
  std::set<VertexId> seen{start};
  std::deque<std::pair<VertexId, std::size_t>> queue{{start, 0}};
  while (!queue.empty()) {
    const auto [v, dist] = queue.front();
    queue.pop_front();
    if (dist == radius) continue;
    const Layer lv = ell.layer[v];
    for (VertexId w : g.neighbors(v)) {
      const Layer lw = ell.layer[w];
      if (lw < lv || lw > hi || lw == kInfiniteLayer || lw < lo) continue;
      if (seen.insert(w).second) queue.emplace_back(w, dist + 1);
    }
  }
  return seen;
}

LayerAssignment some_layering(const Graph& g, std::size_t k) {
  return reference_peeling_layering(g, k);
}

TEST(DirectedGather, MatchesBfsGroundTruth) {
  util::SplitRng rng(1);
  const Graph g = graph::gnm(200, 700, rng);
  const LayerAssignment ell = some_layering(g, 10);
  ASSERT_TRUE(ell.is_complete());

  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  DirectedGatherParams params;
  params.block_lo = 1;
  params.block_hi = ell.num_layers;
  params.radius = 3;
  const DirectedGatherResult result = directed_gather(g, ell, params, ctx);

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto truth =
        bfs_truth(g, ell, v, 1, ell.num_layers, params.radius);
    const std::set<VertexId> got(result.reachable[v].begin(),
                                 result.reachable[v].end());
    EXPECT_EQ(got, truth) << "vertex " << v;
  }
}

TEST(DirectedGather, RespectsBlockBoundaries) {
  util::SplitRng rng(2);
  const Graph g = graph::gnm(200, 600, rng);
  const LayerAssignment ell = some_layering(g, 8);
  ASSERT_TRUE(ell.is_complete());
  ASSERT_GE(ell.num_layers, 2u);

  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  DirectedGatherParams params;
  params.block_lo = 1;
  params.block_hi = 1;  // single-layer block
  params.radius = 4;
  const DirectedGatherResult result = directed_gather(g, ell, params, ctx);

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (ell.layer[v] != 1) {
      EXPECT_TRUE(result.reachable[v].empty());
      continue;
    }
    for (VertexId w : result.reachable[v])
      EXPECT_EQ(ell.layer[w], 1u) << "leaked outside the block";
  }
}

TEST(DirectedGather, DoublingCountLogarithmic) {
  util::SplitRng rng(3);
  const Graph g = graph::gnm(150, 450, rng);
  const LayerAssignment ell = some_layering(g, 8);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  DirectedGatherParams params;
  params.block_lo = 1;
  params.block_hi = ell.num_layers;
  params.radius = 9;  // needs ⌈log2 9⌉ = 4 doublings
  const DirectedGatherResult result = directed_gather(g, ell, params, ctx);
  EXPECT_EQ(result.doublings, 4u);
  EXPECT_GT(ledger.rounds_by_label().at("directed_gather.fetch"), 0u);
}

TEST(DirectedGather, OverflowCapEngages) {
  // A clique in one layer: reach-sets would be the whole layer; a small
  // cap must flag overflow instead.
  const Graph g = graph::clique(40);
  LayerAssignment ell;
  ell.layer.assign(40, 1);
  ell.num_layers = 1;

  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  DirectedGatherParams params;
  params.block_lo = 1;
  params.block_hi = 1;
  params.radius = 4;
  params.max_set_words = 8;
  const DirectedGatherResult result = directed_gather(g, ell, params, ctx);
  bool any_overflow = false;
  for (VertexId v = 0; v < 40; ++v) any_overflow |= result.overflowed[v];
  EXPECT_TRUE(any_overflow);
}

TEST(DirectedGather, RadiusOneIsNeighborhood) {
  const Graph g = graph::star(6);
  LayerAssignment ell;
  ell.layer = {2, 1, 1, 1, 1, 1};  // center high, leaves low
  ell.num_layers = 2;
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  DirectedGatherParams params;
  params.block_lo = 1;
  params.block_hi = 2;
  params.radius = 1;
  const DirectedGatherResult result = directed_gather(g, ell, params, ctx);
  // Leaves reach themselves + the center (non-decreasing 1→2); the center
  // reaches only itself (2→1 decreases).
  for (VertexId leaf = 1; leaf < 6; ++leaf)
    EXPECT_EQ(result.reachable[leaf],
              (std::vector<VertexId>{0, leaf}));
  EXPECT_EQ(result.reachable[0], (std::vector<VertexId>{0}));
  EXPECT_EQ(result.doublings, 0u);  // radius 1 needs no doubling
}

// ---------------- TreeView wire format ----------------

TEST(TreeViewSerialization, RoundTripsStarAndPruned) {
  const Graph g = graph::star(8);
  const TreeView star = TreeView::star(0, g.neighbors(0));
  const auto words = star.serialize();
  EXPECT_EQ(words.size(), star.serialized_words());
  const TreeView back = TreeView::deserialize(words);
  ASSERT_EQ(back.size(), star.size());
  for (TreeView::NodeId x = 0; x < star.size(); ++x) {
    EXPECT_EQ(back.vertex_of(x), star.vertex_of(x));
    EXPECT_EQ(back.node(x).parent, star.node(x).parent);
    EXPECT_EQ(back.node(x).depth, star.node(x).depth);
  }
  EXPECT_TRUE(back.is_valid_mapping(g));

  const TreeView pruned = local_prune(star, 3);
  const TreeView pruned_back = TreeView::deserialize(pruned.serialize());
  EXPECT_EQ(pruned_back.size(), pruned.size());
  EXPECT_TRUE(pruned_back.structurally_sound());
}

TEST(TreeViewSerialization, SingleNode) {
  const TreeView t = TreeView::single(5);
  const TreeView back = TreeView::deserialize(t.serialize());
  EXPECT_EQ(back.size(), 1u);
  EXPECT_EQ(back.root_vertex(), 5u);
}

TEST(TreeViewSerialization, RejectsCorruptPayloads) {
  const TreeView t = TreeView::single(5);
  auto words = t.serialize();
  words.push_back(0);  // wrong length
  EXPECT_THROW(TreeView::deserialize(words), arbor::InvariantError);

  std::vector<std::uint64_t> empty;
  EXPECT_THROW(TreeView::deserialize(empty), arbor::InvariantError);

  // Parent pointing forward (child before parent).
  std::vector<std::uint64_t> forward{2, /*root*/ 3, 0xffffffffu,
                                     /*node1 parent=5*/ 4, 5};
  EXPECT_THROW(TreeView::deserialize(forward), arbor::InvariantError);
}

}  // namespace
}  // namespace arbor::core
