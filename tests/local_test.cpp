// Tests for the LOCAL model substrate: synchronous round engine, threshold
// peeling (BE08), and the randomized list coloring with its determinism
// contract (the property the MPC cone replay depends on).
#include <gtest/gtest.h>

#include <numeric>

#include "util/assert.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "local/list_coloring.hpp"
#include "local/network.hpp"
#include "local/peeling.hpp"
#include "util/rng.hpp"

namespace arbor::local {
namespace {

using graph::Graph;
using graph::VertexId;

TEST(RoundEngine, DoubleBufferingIsSynchronous) {
  // On a path, propagate a token from vertex 0: state = max of neighbors'
  // previous states. After r rounds the token reaches distance exactly r —
  // it would travel farther if updates leaked within a round.
  const Graph g = graph::path(6);
  std::vector<int> init(6, 0);
  init[0] = 1;
  RoundEngine<int> engine(g, init);
  const auto update = [&](VertexId v, const std::vector<int>& prev) {
    int best = prev[v];
    for (VertexId w : g.neighbors(v)) best = std::max(best, prev[w]);
    return best;
  };
  engine.run_round(update);
  EXPECT_EQ(engine.state(1), 1);
  EXPECT_EQ(engine.state(2), 0);  // not yet
  engine.run_round(update);
  EXPECT_EQ(engine.state(2), 1);
  EXPECT_EQ(engine.state(3), 0);
  EXPECT_EQ(engine.rounds(), 2u);
}

TEST(RoundEngine, RunUntilStopsOnPredicate) {
  const Graph g = graph::path(5);
  std::vector<int> init(5, 0);
  init[0] = 1;
  RoundEngine<int> engine(g, init);
  const bool done = engine.run_until(
      [&](VertexId v, const std::vector<int>& prev) {
        int best = prev[v];
        for (VertexId w : g.neighbors(v)) best = std::max(best, prev[w]);
        return best;
      },
      [](const std::vector<int>& s) {
        return std::accumulate(s.begin(), s.end(), 0) == 5;
      },
      /*max_rounds=*/10);
  EXPECT_TRUE(done);
  EXPECT_EQ(engine.rounds(), 4u);  // distance from 0 to 4
}

TEST(Peeling, ForestCompletesWithThresholdTwo) {
  util::SplitRng rng(1);
  const Graph g = graph::random_forest(500, rng, 0.0);
  const PeelingResult result = peel_by_threshold(g, 2, 100);
  EXPECT_TRUE(result.complete);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_GE(result.layer[v], 1u);
}

TEST(Peeling, StallsBelowMinDegree) {
  const Graph g = graph::clique(6);  // min degree 5
  const PeelingResult result = peel_by_threshold(g, 2, 100);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.num_layers, 0u);  // nothing ever peeled
}

TEST(Peeling, LayeringHasBoundedForwardDegree) {
  util::SplitRng rng(2);
  const Graph g = graph::forest_union(300, 3, rng);
  const std::size_t threshold = 12;  // ≥ 4λ
  const PeelingResult result = peel_by_threshold(g, threshold, 100);
  ASSERT_TRUE(result.complete);
  // A vertex peeled in round i has ≤ threshold neighbors in rounds ≥ i.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::size_t forward = 0;
    for (VertexId w : g.neighbors(v))
      if (result.layer[w] >= result.layer[v]) ++forward;
    EXPECT_LE(forward, threshold);
  }
}

TEST(Peeling, GeometricDecayAtDoubleAverageDegree) {
  util::SplitRng rng(3);
  const Graph g = graph::gnm(2000, 4000, rng);  // avg degree 4
  const PeelingResult result = peel_by_threshold(g, 8, 100);
  ASSERT_TRUE(result.complete);
  // At threshold ≥ 2·avg-degree at least half the vertices peel per round,
  // so rounds ≤ log2(n) + O(1).
  EXPECT_LE(result.rounds, 12u);
}

TEST(Be08, RoundsLogarithmicAndComplete) {
  util::SplitRng rng(4);
  const Graph g = graph::forest_union(4096, 4, rng);
  const PeelingResult result = be08_h_partition(g, 4, 0.2);
  EXPECT_TRUE(result.complete);
  EXPECT_LE(result.rounds, 30u);
  EXPECT_GE(result.rounds, 3u);
}

TEST(Be08, ThrowsWhenThresholdBelowArboricity) {
  const Graph g = graph::clique(64);  // λ = 32
  EXPECT_THROW(be08_h_partition(g, 1, 0.2), arbor::InvariantError);
}

// ---------------- list coloring ----------------

std::vector<std::vector<graph::Color>> uniform_palettes(const Graph& g,
                                                        std::size_t size) {
  std::vector<graph::Color> palette(size);
  std::iota(palette.begin(), palette.end(), graph::Color{0});
  return std::vector<std::vector<graph::Color>>(g.num_vertices(), palette);
}

std::vector<std::uint64_t> identity_keys(const Graph& g) {
  std::vector<std::uint64_t> keys(g.num_vertices());
  std::iota(keys.begin(), keys.end(), std::uint64_t{0});
  return keys;
}

TEST(ListColoring, ProperOnRandomGraph) {
  util::SplitRng rng(5);
  const Graph g = graph::gnm(300, 900, rng);
  const std::size_t palette = g.max_degree() + 1;
  const util::StatelessCoin coin(77);
  const ListColoringResult result =
      list_color(g, identity_keys(g), uniform_palettes(g, palette), coin, 1);
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(graph::check_coloring(g, result.colors).proper);
}

TEST(ListColoring, ConvergesFast) {
  util::SplitRng rng(6);
  const Graph g = graph::gnm(1000, 3000, rng);
  const util::StatelessCoin coin(78);
  const ListColoringResult result = list_color(
      g, identity_keys(g), uniform_palettes(g, g.max_degree() + 1), coin, 1);
  ASSERT_TRUE(result.complete);
  EXPECT_LE(result.rounds, 40u);  // O(log n) whp, usually ≤ ~15
}

TEST(ListColoring, RespectsPalettes) {
  const Graph g = graph::cycle(10);
  // Per-vertex palettes of size 3 with distinct offsets.
  std::vector<std::vector<graph::Color>> palettes(10);
  for (VertexId v = 0; v < 10; ++v)
    palettes[v] = {static_cast<graph::Color>(v), 100, 101};
  const util::StatelessCoin coin(79);
  const ListColoringResult result =
      list_color(g, identity_keys(g), palettes, coin, 2);
  ASSERT_TRUE(result.complete);
  for (VertexId v = 0; v < 10; ++v) {
    const graph::Color c = result.colors[v];
    EXPECT_TRUE(c == v || c == 100 || c == 101);
  }
  EXPECT_TRUE(graph::check_coloring(g, result.colors).proper);
}

TEST(ListColoring, RejectsTooSmallPalette) {
  const Graph g = graph::clique(4);
  const util::StatelessCoin coin(80);
  EXPECT_THROW(
      list_color(g, identity_keys(g), uniform_palettes(g, 3), coin, 1),
      arbor::InvariantError);
}

TEST(ListColoring, DeterministicGivenSeedAndKeys) {
  util::SplitRng rng(7);
  const Graph g = graph::gnm(200, 500, rng);
  const util::StatelessCoin coin(81);
  const auto r1 = list_color(g, identity_keys(g),
                             uniform_palettes(g, g.max_degree() + 1), coin, 3);
  const auto r2 = list_color(g, identity_keys(g),
                             uniform_palettes(g, g.max_degree() + 1), coin, 3);
  EXPECT_EQ(r1.colors, r2.colors);
  EXPECT_EQ(r1.rounds, r2.rounds);
}

TEST(ListColoring, PhaseTagChangesOutcome) {
  util::SplitRng rng(8);
  const Graph g = graph::gnm(200, 500, rng);
  const util::StatelessCoin coin(82);
  const auto r1 = list_color(g, identity_keys(g),
                             uniform_palettes(g, g.max_degree() + 2), coin, 1);
  const auto r2 = list_color(g, identity_keys(g),
                             uniform_palettes(g, g.max_degree() + 2), coin, 2);
  EXPECT_NE(r1.colors, r2.colors);
}

// The cone-replay property: coloring an induced subgraph whose vertices
// keep their ORIGINAL keys reproduces, for vertices whose full
// neighborhood is inside the subgraph, exactly the colors of the full run
// — provided the neighborhood states match. We verify the strongest easily
// checkable form: a disjoint union colored jointly equals the two halves
// colored separately (no cross-edges, so cones never leave a half).
TEST(ListColoring, ReplayConsistencyOnDisjointUnion) {
  util::SplitRng rng(9);
  const Graph half_a = graph::gnm(60, 150, rng);
  const Graph half_b = graph::gnm(60, 150, rng);

  // Build the union: ids 0..59 for A, 60..119 for B.
  graph::GraphBuilder builder(120);
  for (const auto& e : half_a.edges()) builder.add_edge(e.u, e.v);
  for (const auto& e : half_b.edges()) builder.add_edge(e.u + 60, e.v + 60);
  const Graph joint = builder.build();

  const std::size_t palette =
      std::max(half_a.max_degree(), half_b.max_degree()) + 1;
  const util::StatelessCoin coin(83);

  const auto joint_result = list_color(
      joint, identity_keys(joint), uniform_palettes(joint, palette), coin, 5);
  ASSERT_TRUE(joint_result.complete);

  const auto a_result = list_color(half_a, identity_keys(half_a),
                                   uniform_palettes(half_a, palette), coin, 5);
  std::vector<std::uint64_t> b_keys(60);
  std::iota(b_keys.begin(), b_keys.end(), std::uint64_t{60});
  const auto b_result =
      list_color(half_b, b_keys, uniform_palettes(half_b, palette), coin, 5);

  for (VertexId v = 0; v < 60; ++v) {
    EXPECT_EQ(joint_result.colors[v], a_result.colors[v]);
    EXPECT_EQ(joint_result.colors[v + 60], b_result.colors[v]);
  }
}

}  // namespace
}  // namespace arbor::local
