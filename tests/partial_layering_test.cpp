// Tests for Algorithm 3 (PartialLayerAssignmentTree) and Algorithm 4
// (PartialLayerAssignment): hand-checked peeling semantics, Lemma 3.8
// (tree layers lower-bound graph layers on monotone-reachable nodes),
// Lemma 3.9 (roots with small path counts get assigned), Lemma 3.10 /
// Claim 3.12 (out-degree of the min-projection).
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "core/layering.hpp"
#include "core/partial_layer_tree.hpp"
#include "core/partial_layering.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"

namespace arbor::core {
namespace {

using graph::Graph;
using graph::VertexId;
using NodeId = TreeView::NodeId;

mpc::ClusterConfig test_config() { return mpc::ClusterConfig{64, 4096}; }

TEST(PartialLayerTree, SingletonRootAssignsWhenMissingSmall) {
  // Tree = single node mapping to the center of a star: Missing = deg = 4.
  const Graph g = graph::star(5);
  const TreeView t = TreeView::single(0);
  const auto small = partial_layer_assignment_tree(g, t, /*a=*/3, /*L=*/4);
  EXPECT_EQ(small[0], kInfiniteLayer);  // 4 > 3: never assignable
  const auto big = partial_layer_assignment_tree(g, t, /*a=*/4, /*L=*/4);
  EXPECT_EQ(big[0], 1u);
}

TEST(PartialLayerTree, PeelsLeavesBeforeRoot) {
  // Star tree at the center of star(5): root has 4 children (missing 0),
  // leaves have missing = deg(leaf) = 1. With a=1: leaves assign at layer
  // 1; root has 4 unassigned children at layer-1 start → waits; at layer 2
  // its children are gone → |children ∩ V_≥2| = 0 ≤ 1 → layer 2.
  const Graph g = graph::star(5);
  const TreeView t = TreeView::star(0, g.neighbors(0));
  const auto layers = partial_layer_assignment_tree(g, t, /*a=*/1, /*L=*/4);
  EXPECT_EQ(layers[0], 2u);
  for (NodeId x = 1; x < t.size(); ++x) EXPECT_EQ(layers[x], 1u);
}

TEST(PartialLayerTree, RespectsLayerBudgetL) {
  // Same setup but L=1: the root cannot be assigned within 1 layer.
  const Graph g = graph::star(5);
  const TreeView t = TreeView::star(0, g.neighbors(0));
  const auto layers = partial_layer_assignment_tree(g, t, /*a=*/1, /*L=*/1);
  EXPECT_EQ(layers[0], kInfiniteLayer);
  for (NodeId x = 1; x < t.size(); ++x) EXPECT_EQ(layers[x], 1u);
}

TEST(PartialLayerTree, SynchronousSelectionWithinLayer) {
  // Chain tree a->b (both missing 1 on a path graph): with a=1, both have
  // |children ∩ V_≥1| + missing: a has 1+1=2 > 1, b has 0+1=1 ≤ 1. Layer 1
  // takes only b; layer 2 takes a (child gone). With a=2 both take layer 1
  // SIMULTANEOUSLY — b's membership of V_1 must not unblock a within the
  // same iteration (it doesn't change the count, but this pins semantics).
  const Graph g = graph::path(3);
  std::vector<TreeView::Node> nodes(2);
  nodes[0] = {1, TreeView::kNoNode, 0, {1}};
  nodes[1] = {2, 0, 1, {}};
  const TreeView t = TreeView::from_nodes(std::move(nodes));
  // missing(root) = deg(1) - 1 = 1; missing(child) = deg(2) = 1.
  const auto tight = partial_layer_assignment_tree(g, t, 1, 4);
  EXPECT_EQ(tight[1], 1u);
  EXPECT_EQ(tight[0], 2u);
  const auto loose = partial_layer_assignment_tree(g, t, 2, 4);
  EXPECT_EQ(loose[0], 1u);
  EXPECT_EQ(loose[1], 1u);
}

// Lemma 3.8: for strictly monotonically reachable nodes,
// ℓ_T(x) ≤ ℓ_G(map(x)) when a ≥ d + missing-bound.
TEST(PartialLayerTree, Lemma38TreeLayersLowerBoundGraphLayers) {
  util::SplitRng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::forest_union(80, 2, rng);
    const LayerAssignment ell = reference_peeling_layering(g, 8);
    ASSERT_TRUE(ell.is_complete());
    const std::size_t d = assignment_outdegree(g, ell);

    // Full star trees have missing = 0 everywhere (all neighbors present
    // as children), so a = d suffices.
    const auto start = static_cast<VertexId>(rng.next_below(80));
    TreeView t = TreeView::star(start, g.neighbors(start));
    {
      std::vector<TreeView> stars;
      std::vector<std::pair<NodeId, const TreeView*>> attachments;
      const auto leaves = t.leaves_at_depth(1);
      for (NodeId leaf : leaves) {
        const VertexId u = t.vertex_of(leaf);
        stars.push_back(TreeView::star(u, g.neighbors(u)));
      }
      for (std::size_t i = 0; i < leaves.size(); ++i)
        attachments.emplace_back(leaves[i], &stars[i]);
      t = t.attach(attachments);
    }
    // Leaves at depth 2 have missing = deg - 0 children... they have no
    // children, so missing = deg(map(x)). Use the global max degree as the
    // missing bound.
    const std::size_t missing_bound = g.max_degree();
    const std::size_t a = d + missing_bound;
    const auto tree_layers =
        partial_layer_assignment_tree(g, t, a, ell.num_layers);
    const auto reachable = t.monotonically_reachable(ell);
    for (NodeId x = 0; x < t.size(); ++x) {
      if (!reachable[x]) continue;
      EXPECT_LE(tree_layers[x], ell.layer[t.vertex_of(x)])
          << "Lemma 3.8 violated at tree node " << x;
    }
  }
}

// Algorithm 4 + Claim 3.12: out-degree of the combined assignment is at
// most (s+1)·k, and the assignment is a valid partial assignment.
TEST(PartialLayering, Claim312OutdegreeBound) {
  util::SplitRng rng(2);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = graph::gnm(150, 450, rng);
    mpc::RoundLedger ledger(test_config());
    mpc::MpcContext ctx(test_config(), &ledger);
    PartialLayeringParams p;
    p.budget = 256;
    p.prune_k = 4;
    p.num_layers = 3;
    p.steps = 3;
    const PartialLayeringResult result =
        partial_layer_assignment(g, p, ctx);
    EXPECT_EQ(result.outdegree_bound, (p.steps + 1) * p.prune_k);
    EXPECT_TRUE(is_valid_partial_assignment(g, result.assignment,
                                            result.outdegree_bound))
        << "Claim 3.12 violated on trial " << trial;
  }
}

// Lemma 3.9 (via Lemma 3.13's counting): vertices whose NumPathsIn under
// the reference layering is ≤ √B get assigned a layer no larger than their
// reference layer.
TEST(PartialLayering, Lemma39SmallPathCountVerticesAssigned) {
  util::SplitRng rng(3);
  const Graph g = graph::forest_union(200, 2, rng);
  const std::size_t k = 8;
  const LayerAssignment ell = reference_peeling_layering(g, k);
  ASSERT_TRUE(ell.is_complete());
  const std::size_t d = assignment_outdegree(g, ell);
  const auto paths_in = num_paths_in(g, ell);

  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  PartialLayeringParams p;
  p.budget = 1024;  // √B = 32
  p.prune_k = std::max<std::size_t>(d, 1);
  p.num_layers = ell.num_layers;
  p.steps = 1;
  while ((std::size_t{1} << p.steps) <= p.num_layers) ++p.steps;
  const PartialLayeringResult result = partial_layer_assignment(g, p, ctx);

  const double sqrt_b = std::sqrt(static_cast<double>(p.budget));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (static_cast<double>(paths_in[v]) <= sqrt_b) {
      EXPECT_NE(result.assignment.layer[v], kInfiniteLayer)
          << "Lemma 3.9: vertex " << v << " should be assigned";
      EXPECT_LE(result.assignment.layer[v], ell.layer[v])
          << "Lemma 3.9: layer should not exceed the reference";
    }
  }
}

TEST(PartialLayering, EmptyGraph) {
  const Graph g = graph::GraphBuilder(0).build();
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  PartialLayeringParams p;
  const PartialLayeringResult result = partial_layer_assignment(g, p, ctx);
  EXPECT_TRUE(result.assignment.layer.empty());
}

TEST(PartialLayering, RejectsTooFewSteps) {
  const Graph g = graph::path(4);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  PartialLayeringParams p;
  p.num_layers = 8;
  p.steps = 3;  // 2^3 = 8 is NOT > 8
  EXPECT_THROW(partial_layer_assignment(g, p, ctx), arbor::InvariantError);
}

}  // namespace
}  // namespace arbor::core
