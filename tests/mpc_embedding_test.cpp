// Tests for the LOCAL-in-MPC embedding: the distributed threshold peeling
// must agree bit-for-bit with the sequential reference, consume exactly
// one cluster round per LOCAL round, and respect the traffic caps.
#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "local/mpc_embedding.hpp"
#include "local/peeling.hpp"
#include "mpc/cluster.hpp"
#include "util/rng.hpp"

namespace arbor::local {
namespace {

using graph::Graph;
using graph::VertexId;

TEST(EmbeddedPeeling, MatchesReferenceExactly) {
  util::SplitRng rng(1);
  const Graph g = graph::forest_union(500, 3, rng);
  const std::size_t threshold = 12;

  const PeelingResult reference = peel_by_threshold(g, threshold, 100);
  ASSERT_TRUE(reference.complete);

  mpc::Cluster cluster(mpc::ClusterConfig{8, 4096}, nullptr);
  const EmbeddedPeelingResult embedded =
      embedded_threshold_peeling(g, threshold, cluster, 100);
  ASSERT_TRUE(embedded.complete);
  EXPECT_EQ(embedded.num_layers, reference.num_layers);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(embedded.layer[v], reference.layer[v]) << "vertex " << v;
}

TEST(EmbeddedPeeling, OneClusterRoundPerLocalRound) {
  util::SplitRng rng(2);
  const Graph g = graph::gnm(400, 1200, rng);
  mpc::Cluster cluster(mpc::ClusterConfig{8, 8192}, nullptr);
  const EmbeddedPeelingResult embedded =
      embedded_threshold_peeling(g, 12, cluster, 100);
  ASSERT_TRUE(embedded.complete);
  EXPECT_EQ(embedded.cluster_rounds,
            static_cast<std::size_t>(embedded.num_layers));
}

TEST(EmbeddedPeeling, ChainCascadesOneLevelPerRound) {
  util::SplitRng rng(3);
  const auto chain = graph::slow_peeling_chain(6, 10, rng);
  const auto threshold = static_cast<std::size_t>(
      std::ceil(2.2 * static_cast<double>(chain.lambda)));
  // The chain is dense; give machines room for the notification bursts.
  mpc::Cluster cluster(mpc::ClusterConfig{4, 1 << 17}, nullptr);
  const EmbeddedPeelingResult embedded =
      embedded_threshold_peeling(chain.graph, threshold, cluster, 100);
  ASSERT_TRUE(embedded.complete);
  EXPECT_EQ(embedded.num_layers, chain.levels);
}

TEST(EmbeddedPeeling, StallsGracefullyBelowMinDegree) {
  const Graph g = graph::clique(12);
  mpc::Cluster cluster(mpc::ClusterConfig{4, 4096}, nullptr);
  const EmbeddedPeelingResult embedded =
      embedded_threshold_peeling(g, 2, cluster, 50);
  EXPECT_FALSE(embedded.complete);
  EXPECT_EQ(embedded.num_layers, 0u);
}

TEST(EmbeddedPeeling, TrafficCapViolationIsLoud) {
  // A star peels all leaves in round 1: the hub's machine receives ~n
  // notification words. With a tiny word budget the cluster must throw
  // rather than silently exceed the model.
  const Graph g = graph::star(2000);
  mpc::Cluster cluster(mpc::ClusterConfig{8, 64}, nullptr);
  EXPECT_THROW(embedded_threshold_peeling(g, 3, cluster, 10),
               arbor::InvariantError);
}

TEST(EmbeddedPeeling, SingleMachineDegenerate) {
  util::SplitRng rng(4);
  const Graph g = graph::random_forest(100, rng);
  mpc::Cluster cluster(mpc::ClusterConfig{1, 4096}, nullptr);
  const EmbeddedPeelingResult embedded =
      embedded_threshold_peeling(g, 2, cluster, 100);
  EXPECT_TRUE(embedded.complete);
  const PeelingResult reference = peel_by_threshold(g, 2, 100);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(embedded.layer[v], reference.layer[v]);
}

TEST(EmbeddedPeeling, EmptyGraph) {
  const Graph g = graph::GraphBuilder(0).build();
  mpc::Cluster cluster(mpc::ClusterConfig{2, 64}, nullptr);
  const EmbeddedPeelingResult embedded =
      embedded_threshold_peeling(g, 2, cluster, 10);
  EXPECT_TRUE(embedded.complete);
  EXPECT_EQ(embedded.cluster_rounds, 0u);
}

}  // namespace
}  // namespace arbor::local
