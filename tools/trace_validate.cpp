// trace-validate: check an arbor Chrome-trace file (scripts/check.sh
// --trace-smoke).
//
//   trace-validate FILE [--min-events N] [--expect label,label,...]
//                       [--expect-pids N] [--metrics name,name,...]
//
// Validates that FILE is well-formed JSON (src/trace/json_check.hpp — a
// real parse, not a grep), contains a traceEvents array with at least N
// complete ("ph": "X") events, mentions every --expect label in some
// event name, and carries process-name metadata for at least N distinct
// lanes (--expect-pids: driver + workers). A file with ZERO complete
// spans is rejected by name even when --min-events would allow it — an
// empty trace means the tracer never armed, which is the silent failure
// this tool exists to catch. --metrics asserts the file embeds a metrics
// block naming each given counter/histogram. Exit 0 on success; prints
// the first failure and exits 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/json_check.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s FILE [--min-events N] [--expect l1,l2,...] "
               "[--expect-pids N] [--metrics n1,n2,...]\n",
               argv0);
  std::exit(2);
}

void split_list(const std::string& list, std::vector<std::string>& out) {
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item = list.substr(
        start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++count;
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t min_events = 1;
  std::size_t expect_pids = 0;
  std::vector<std::string> expect_labels;
  std::vector<std::string> expect_metrics;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-events") == 0 && i + 1 < argc) {
      min_events = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--expect-pids") == 0 && i + 1 < argc) {
      expect_pids = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--expect") == 0 && i + 1 < argc) {
      split_list(argv[++i], expect_labels);
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      split_list(argv[++i], expect_metrics);
    } else if (path.empty() && argv[i][0] != '-') {
      path = argv[i];
    } else {
      usage(argv[0]);
    }
  }
  if (path.empty()) usage(argv[0]);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace-validate: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string body = buf.str();

  const arbor::trace::JsonCheckResult check = arbor::trace::check_json(body);
  if (!check.ok) {
    std::fprintf(stderr, "trace-validate: %s is not valid JSON: %s at byte %zu\n",
                 path.c_str(), check.error.c_str(), check.offset);
    return 1;
  }
  if (body.find("\"traceEvents\"") == std::string::npos) {
    std::fprintf(stderr, "trace-validate: %s has no traceEvents array\n",
                 path.c_str());
    return 1;
  }
  const std::size_t events = count_occurrences(body, "\"ph\":\"X\"");
  if (events == 0) {
    std::fprintf(stderr,
                 "trace-validate: %s contains zero complete spans — the "
                 "tracer never armed or nothing ran under it\n",
                 path.c_str());
    return 1;
  }
  if (events < min_events) {
    std::fprintf(stderr,
                 "trace-validate: %s has %zu complete events, expected >= %zu\n",
                 path.c_str(), events, min_events);
    return 1;
  }
  const std::size_t lanes = count_occurrences(body, "\"process_name\"");
  if (lanes < expect_pids) {
    std::fprintf(stderr,
                 "trace-validate: %s has %zu process lanes, expected >= %zu\n",
                 path.c_str(), lanes, expect_pids);
    return 1;
  }
  for (const std::string& label : expect_labels) {
    if (body.find(label) == std::string::npos) {
      std::fprintf(stderr, "trace-validate: %s never mentions \"%s\"\n",
                   path.c_str(), label.c_str());
      return 1;
    }
  }
  if (!expect_metrics.empty() &&
      body.find("\"metrics\"") == std::string::npos) {
    std::fprintf(stderr,
                 "trace-validate: %s embeds no metrics block (was the run "
                 "traced with metrics on?)\n",
                 path.c_str());
    return 1;
  }
  for (const std::string& metric : expect_metrics) {
    if (body.find("\"" + metric + "\"") == std::string::npos) {
      std::fprintf(stderr,
                   "trace-validate: %s records no counter/histogram named "
                   "\"%s\"\n",
                   path.c_str(), metric.c_str());
      return 1;
    }
  }
  std::printf("trace-validate: %s ok (%zu events, %zu lanes)\n", path.c_str(),
              events, lanes);
  return 0;
}
