// arbor_report: render and regression-diff observatory documents
// (scripts/check.sh --report).
//
//   arbor_report show FILE
//   arbor_report diff BASELINE CURRENT [--threshold F] [--ignore SUBSTR]...
//
// `show` renders a ReportLog JSON document (obs::ReportLog::write_json_file)
// as per-program tables: every label's measured rounds and peak
// words/machine next to its declared analytic bound and headroom, then the
// metrics snapshot (counters, histogram percentiles with dropped-sample
// counts) and the per-worker telemetry notes.
//
// `diff` flattens BOTH files — any JSON documents, observatory reports and
// bench BENCH_*.json alike — to dotted leaf paths and compares leaf by
// leaf: numeric leaves drift when their relative difference exceeds
// --threshold (default 0.05), strings/bools when unequal, and a path
// present on one side only is always reported. Paths containing any ignore
// substring are skipped; the built-in list covers the timing- and
// host-dependent fields (durations, sums, arena/worker state), so what
// remains is the structural contract a regression gate can hold steady.
// Exit 0 when clean, 1 on any reported drift, 2 on usage/IO errors.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/json_check.hpp"

namespace {

using arbor::trace::JsonValue;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s show FILE\n"
               "       %s diff BASELINE CURRENT [--threshold F] "
               "[--ignore SUBSTR]...\n",
               argv0, argv0);
  std::exit(2);
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

JsonValue parse_or_die(const std::string& path) {
  std::string body;
  if (!read_file(path, body)) {
    std::fprintf(stderr, "arbor_report: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  arbor::trace::JsonParseResult parsed = arbor::trace::parse_json(body);
  if (!parsed.ok) {
    std::fprintf(stderr, "arbor_report: %s is not valid JSON: %s at byte %zu\n",
                 path.c_str(), parsed.error.c_str(), parsed.offset);
    std::exit(2);
  }
  return std::move(parsed.value);
}

// ------------------------------------------------------------------- show

double num_of(const JsonValue& v, const char* key) {
  const JsonValue* member = v.find(key);
  return member != nullptr ? member->number : 0.0;
}

std::string str_of(const JsonValue& v, const char* key) {
  const JsonValue* member = v.find(key);
  return member != nullptr ? member->string : std::string();
}

void show_report(const JsonValue& report) {
  std::printf("program %-28s backend %-12s machines %-6.0f S %-8.0f "
              "arena %.0f words\n",
              str_of(report, "program").c_str(),
              str_of(report, "backend").c_str(), num_of(report, "machines"),
              num_of(report, "capacity"), num_of(report, "arena_words"));
  const JsonValue* labels = report.find("labels");
  if (labels == nullptr || labels->array.empty()) return;
  std::printf("  %-32s %8s %12s %14s %12s %9s  %s\n", "label", "rounds",
              "peak_words", "total_words", "bound", "headroom", "declared");
  for (const JsonValue& label : labels->array) {
    const JsonValue* bounded = label.find("bounded");
    const bool has_bound = bounded != nullptr && bounded->boolean;
    char bound_buf[32] = "-";
    char headroom_buf[32] = "-";
    if (has_bound) {
      std::snprintf(bound_buf, sizeof(bound_buf), "%.0f",
                    num_of(label, "bound_words"));
      std::snprintf(headroom_buf, sizeof(headroom_buf), "%.3f",
                    num_of(label, "bound_headroom"));
    }
    std::printf("  %-32s %8.0f %12.0f %14.0f %12s %9s  %s\n",
                str_of(label, "label").c_str(), num_of(label, "rounds"),
                num_of(label, "peak_words"), num_of(label, "total_words"),
                bound_buf, headroom_buf,
                has_bound ? str_of(label, "formula").c_str() : "(unbounded)");
  }
}

int show(const std::string& path) {
  const JsonValue doc = parse_or_die(path);
  const JsonValue* reports = doc.find("reports");
  if (reports == nullptr) {
    std::fprintf(stderr,
                 "arbor_report: %s has no \"reports\" array (not an "
                 "observatory document?)\n",
                 path.c_str());
    return 2;
  }
  for (const JsonValue& report : reports->array) {
    show_report(report);
    std::printf("\n");
  }
  if (const JsonValue* metrics = doc.find("metrics")) {
    if (const JsonValue* counters = metrics->find("counters");
        counters != nullptr && !counters->object.empty()) {
      std::printf("counters\n");
      for (const auto& [name, value] : counters->object)
        std::printf("  %-48s %14.0f\n", name.c_str(), value.number);
    }
    if (const JsonValue* histograms = metrics->find("histograms");
        histograms != nullptr && !histograms->object.empty()) {
      std::printf("histograms\n");
      std::printf("  %-40s %10s %10s %12s %12s %12s\n", "name", "count",
                  "dropped", "p50", "p95", "p99");
      for (const auto& [name, h] : histograms->object)
        std::printf("  %-40s %10.0f %10.0f %12.3f %12.3f %12.3f\n",
                    name.c_str(), num_of(h, "count"), num_of(h, "dropped"),
                    num_of(h, "p50"), num_of(h, "p95"), num_of(h, "p99"));
    }
  }
  if (const JsonValue* workers = doc.find("workers");
      workers != nullptr && !workers->array.empty()) {
    std::printf("workers\n");
    for (const JsonValue& w : workers->array)
      std::printf("  pid %-4.0f %8.0f spans %6.0f counters  last \"%s\"\n",
                  num_of(w, "pid"), num_of(w, "spans"), num_of(w, "counters"),
                  str_of(w, "last_span").c_str());
  }
  return 0;
}

// ------------------------------------------------------------------- diff

struct Leaf {
  std::string path;
  const JsonValue* value = nullptr;
};

void flatten(const JsonValue& v, const std::string& path,
             std::vector<Leaf>& out) {
  switch (v.kind) {
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : v.object)
        flatten(member, path.empty() ? key : path + "." + key, out);
      break;
    case JsonValue::Kind::kArray:
      for (std::size_t i = 0; i < v.array.size(); ++i)
        flatten(v.array[i], path + "[" + std::to_string(i) + "]", out);
      break;
    default:
      out.push_back({path, &v});
  }
}

const Leaf* find_leaf(const std::vector<Leaf>& leaves,
                      const std::string& path) {
  for (const Leaf& leaf : leaves)
    if (leaf.path == path) return &leaf;
  return nullptr;
}

bool ignored(const std::string& path,
             const std::vector<std::string>& ignores) {
  for (const std::string& needle : ignores)
    if (path.find(needle) != std::string::npos) return true;
  return false;
}

std::string leaf_repr(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kString: return "\"" + v.string + "\"";
    default: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", v.number);
      return buf;
    }
  }
}

int diff(const std::string& base_path, const std::string& cur_path,
         double threshold, std::vector<std::string> ignores) {
  // Timing- and host-dependent leaves: durations and their aggregates,
  // percentile estimates over durations, retained-arena capacities, and
  // worker telemetry. Everything else — program shapes, round counts,
  // traffic peaks, declared bounds, knob stamps — must hold steady.
  for (const char* builtin :
       {"_us", "_ns", "_ms", "secs", "sum", "p50", "p95", "p99",
        "hardware_threads", "arena_words", "workers", "mrec_per_sec",
        "speedup"})
    ignores.emplace_back(builtin);

  const JsonValue base_doc = parse_or_die(base_path);
  const JsonValue cur_doc = parse_or_die(cur_path);
  std::vector<Leaf> base;
  std::vector<Leaf> cur;
  flatten(base_doc, "", base);
  flatten(cur_doc, "", cur);

  std::size_t drifts = 0;
  const auto report = [&drifts](const std::string& path,
                                const std::string& detail) {
    std::fprintf(stderr, "arbor_report: drift at %s: %s\n", path.c_str(),
                 detail.c_str());
    ++drifts;
  };

  for (const Leaf& b : base) {
    if (ignored(b.path, ignores)) continue;
    const Leaf* c = find_leaf(cur, b.path);
    if (c == nullptr) {
      report(b.path, "present in " + base_path + " only");
      continue;
    }
    const JsonValue& bv = *b.value;
    const JsonValue& cv = *c->value;
    if (bv.kind != cv.kind) {
      report(b.path, leaf_repr(bv) + " -> " + leaf_repr(cv) + " (type)");
      continue;
    }
    if (bv.kind == JsonValue::Kind::kNumber) {
      const double lo = std::fabs(bv.number);
      const double hi = std::fabs(cv.number);
      const double denom = std::max(lo, hi);
      const double rel =
          denom == 0.0 ? 0.0 : std::fabs(bv.number - cv.number) / denom;
      if (rel > threshold) {
        char detail[128];
        std::snprintf(detail, sizeof(detail), "%.6g -> %.6g (%+.1f%%)",
                      bv.number, cv.number,
                      100.0 * (cv.number - bv.number) /
                          (bv.number == 0.0 ? 1.0 : bv.number));
        report(b.path, detail);
      }
    } else if (bv.kind == JsonValue::Kind::kString
                   ? bv.string != cv.string
                   : bv.kind == JsonValue::Kind::kBool &&
                         bv.boolean != cv.boolean) {
      report(b.path, leaf_repr(bv) + " -> " + leaf_repr(cv));
    }
  }
  for (const Leaf& c : cur) {
    if (ignored(c.path, ignores)) continue;
    if (find_leaf(base, c.path) == nullptr)
      report(c.path, "present in " + cur_path + " only");
  }

  if (drifts != 0) {
    std::fprintf(stderr,
                 "arbor_report: %zu drift%s between %s and %s "
                 "(threshold %.0f%%)\n",
                 drifts, drifts == 1 ? "" : "s", base_path.c_str(),
                 cur_path.c_str(), threshold * 100.0);
    return 1;
  }
  std::printf("arbor_report: %s matches %s (threshold %.0f%%)\n",
              cur_path.c_str(), base_path.c_str(), threshold * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage(argv[0]);
  const std::string mode = argv[1];
  if (mode == "show") {
    if (argc != 3) usage(argv[0]);
    return show(argv[2]);
  }
  if (mode == "diff") {
    if (argc < 4) usage(argv[0]);
    const std::string base_path = argv[2];
    const std::string cur_path = argv[3];
    double threshold = 0.05;
    std::vector<std::string> ignores;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
        threshold = std::strtod(argv[++i], nullptr);
      } else if (std::strcmp(argv[i], "--ignore") == 0 && i + 1 < argc) {
        ignores.emplace_back(argv[++i]);
      } else {
        usage(argv[0]);
      }
    }
    return diff(base_path, cur_path, threshold, std::move(ignores));
  }
  usage(argv[0]);
}
