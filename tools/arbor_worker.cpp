// arbor-worker: one worker process of the multi-process MPC backend.
//
// Spawned by net::ProcessGroup (or by hand, for debugging):
//
//   arbor-worker --connect PORT --rank R
//
// dials the driver on 127.0.0.1:PORT, handshakes (hello / config / peer
// mesh / ready), then serves RoundPrograms for its machine block until
// the driver shuts the group down. Every program it can run is a name in
// net::Registry::builtin(); the driver ships the inputs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/registry.hpp"
#include "net/worker.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect PORT --rank R\n"
               "  Worker process of the arbor multi-process backend; "
               "normally spawned\n  by the driver (net::ProcessGroup), not "
               "by hand.\n  Registered programs:\n",
               argv0);
  for (const std::string& name : arbor::net::Registry::builtin().names())
    std::fprintf(stderr, "    %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  long port = -1;
  long rank = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      port = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--rank") == 0 && i + 1 < argc) {
      rank = std::strtol(argv[++i], nullptr, 10);
    } else {
      usage(argv[0]);
    }
  }
  if (port <= 0 || port > 65535 || rank < 0) usage(argv[0]);
  return arbor::net::tcp_worker_main(static_cast<std::uint16_t>(port),
                                     static_cast<std::size_t>(rank));
}
