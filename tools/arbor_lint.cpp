// arbor_lint: repo-local style wall (scripts/check.sh --lint).
//
// Walks the given source trees (default: src/) and enforces the three
// rules the checker subsystem assumes but the compiler cannot:
//
//   1. no raw std::getenv outside util/env_knob.cpp — every ARBOR_* knob
//      must go through the strict parser so a typo'd value fails the run
//      instead of silently defaulting;
//   2. no unnamed steps in files that build distributable programs — the
//      program verifier rejects them at run time, this catches them at
//      review time (a step added as `program.independent([...])` in a
//      file that calls `distributable(` is flagged);
//   3. no rand()/time() in library code — simulated machines must be
//      deterministic; randomness comes from seeded util/rng, time from
//      trace::now_ns;
//   4. every file registering a distributable program (`registry.add(`)
//      must attach an analytic CostModel (`costed(`) or opt out explicitly
//      (`exempt_cost(`) — the program verifier enforces this per program
//      at run time, this catches a registration file that never even
//      references the bound machinery at review time.
//
// Comments and string/char literals are stripped before matching, so
// documentation may mention the banned names freely. Exit status: 0 clean,
// 1 violations (one "file:line: rule: detail" diagnostic per finding),
// 2 usage/IO error.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string detail;
};

/// Replace comments and string/char literal BODIES with spaces, keeping
/// every newline so line numbers survive. Quotes themselves are kept (a
/// stripped string literal reads `""`), which is exactly what the
/// unnamed-step rule needs: the first non-space char after `(` is still
/// `"` for a named step.
std::string strip_comments_and_strings(const std::string& in) {
  std::string out = in;
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar };
  St st = St::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          st = St::kString;
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLineComment:
        if (c == '\n')
          st = St::kCode;
        else
          out[i] = ' ';
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < in.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + pos, '\n'));
}

bool identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when the match at `pos` starts a fresh token: the preceding char
/// is not part of an identifier or a member/scope path (so `runtime(`,
/// `st->time(`, `clock::time(` never trip the `time(` rule).
bool token_start(const std::string& text, std::size_t pos) {
  if (pos == 0) return true;
  const char prev = text[pos - 1];
  if (identifier_char(prev) || prev == '.' || prev == ':') return false;
  if (prev == '>' && pos >= 2 && text[pos - 2] == '-') return false;
  return true;
}

std::size_t skip_ws(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])))
    ++pos;
  return pos;
}

void scan_file(const fs::path& path, std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    findings.push_back({path.string(), 0, "io", "cannot read file"});
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = strip_comments_and_strings(buf.str());
  const std::string name = path.filename().string();
  const std::string file = path.string();

  // Rule 1: raw getenv. util/env_knob.cpp is the one sanctioned caller.
  if (name != "env_knob.cpp") {
    for (const std::string& needle : {std::string("std::getenv"),
                                      std::string("::getenv")}) {
      for (std::size_t pos = text.find(needle); pos != std::string::npos;
           pos = text.find(needle, pos + 1)) {
        if (needle[0] != ':' && !token_start(text, pos)) continue;
        if (needle[0] == ':' && pos > 0 &&
            (identifier_char(text[pos - 1]) || text[pos - 1] == ':'))
          continue;  // part of std::getenv (already reported) or a::b::getenv
        findings.push_back(
            {file, line_of(text, pos), "raw-getenv",
             "use util::env_knob() so malformed knobs are rejected by name"});
      }
    }
  }

  // Rule 2: unnamed steps in distributable programs.
  if (text.find("distributable(") != std::string::npos) {
    for (const std::string& method :
         {std::string(".independent("), std::string(".barrier(")}) {
      for (std::size_t pos = text.find(method); pos != std::string::npos;
           pos = text.find(method, pos + 1)) {
        const std::size_t open = pos + method.size();
        const std::size_t first = skip_ws(text, open);
        if (first < text.size() && text[first] == '[')
          findings.push_back(
              {file, line_of(text, pos), "unnamed-step",
               "distributable programs must name every step (the program "
               "verifier rejects the default \"cluster.round\" label)"});
      }
    }
  }

  // Rule 4: registered programs carry their analytic bounds. A file that
  // registers worker-side factories but never touches costed()/
  // exempt_cost() ships programs the bound audit cannot see.
  if (text.find("registry.add(") != std::string::npos &&
      text.find(".costed(") == std::string::npos &&
      text.find(".exempt_cost(") == std::string::npos) {
    findings.push_back(
        {file, line_of(text, text.find("registry.add(")), "no-cost-model",
         "registered programs must declare analytic bounds with costed() "
         "or opt out explicitly with exempt_cost()"});
  }

  // Rule 3: nondeterminism. rand()/time() have no place in a simulated
  // machine; srand is caught as a separate token for a clearer message.
  for (const std::string& banned :
       {std::string("rand("), std::string("srand("), std::string("time(")}) {
    for (std::size_t pos = text.find(banned); pos != std::string::npos;
         pos = text.find(banned, pos + 1)) {
      if (!token_start(text, pos)) continue;
      findings.push_back(
          {file, line_of(text, pos), "nondeterminism",
           banned.substr(0, banned.size() - 1) +
               "() is banned in library code — use seeded util/rng or "
               "trace::now_ns"});
    }
  }
}

bool source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) roots.emplace_back("src");

  std::vector<Finding> findings;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      scan_file(root, findings);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      std::cerr << "arbor_lint: no such file or directory: " << root.string()
                << "\n";
      return 2;
    }
    std::vector<fs::path> files;
    for (auto it = fs::recursive_directory_iterator(root, ec);
         it != fs::recursive_directory_iterator(); ++it)
      if (it->is_regular_file() && source_file(it->path()))
        files.push_back(it->path());
    std::sort(files.begin(), files.end());
    for (const fs::path& f : files) scan_file(f, findings);
  }

  for (const Finding& f : findings)
    std::cerr << f.file << ":" << f.line << ": " << f.rule << ": " << f.detail
              << "\n";
  if (!findings.empty()) {
    std::cerr << "arbor_lint: " << findings.size() << " violation"
              << (findings.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  return 0;
}
