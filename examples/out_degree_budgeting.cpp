// Scenario: out-degree budgeting for adjacency-list maintenance.
//
// A classic use of low out-degree orientations (and the reason the ICML'19
// predecessor cared about them): store each edge only at its TAIL, so
// every vertex maintains a list of at most maxout = O(λ log log n) edges
// regardless of its actual degree. Point lookups "is {u,v} an edge?" then
// probe two short lists; updates touch one. This example builds the
// orientation, materializes tail lists, and measures lookup-list lengths
// against the naive (store-at-both-endpoints) layout on a hub-heavy graph.
#include <cstdio>
#include <vector>

#include "core/orientation_mpc.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "mpc/config.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace arbor;

  util::SplitRng rng(11);
  const std::size_t n = 1 << 15;
  // Hub-heavy workload: sparse background + a few stars.
  graph::GraphBuilder builder(n);
  {
    const graph::Graph background = graph::forest_union(n, 3, rng);
    for (const auto& e : background.edges()) builder.add_edge(e.u, e.v);
    for (graph::VertexId hub = 0; hub < 8; ++hub)
      for (std::size_t i = 0; i < 2000; ++i)
        builder.add_edge(hub, static_cast<graph::VertexId>(
                                  rng.next_below(n)));
  }
  const graph::Graph g = builder.build();
  std::printf("graph: n=%zu m=%zu, max degree %zu (hubs)\n",
              g.num_vertices(), g.num_edges(), g.max_degree());

  const mpc::ClusterConfig config =
      mpc::ClusterConfig::for_problem(g.num_vertices(), g.num_edges(), 0.6);
  mpc::RoundLedger ledger(config);
  mpc::MpcContext ctx(config, &ledger);
  const core::MpcOrientationResult result = core::mpc_orient(g, {}, ctx);

  // Tail lists: edge (u,v) stored only at its tail.
  const auto tails = result.orientation.out_neighbors(g);
  std::vector<std::uint64_t> tail_lengths, full_lengths;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    tail_lengths.push_back(tails[v].size());
    full_lengths.push_back(g.degree(v));
  }
  const auto tail_summary = util::summarize_counts(tail_lengths);
  const auto full_summary = util::summarize_counts(full_lengths);

  std::printf("\nper-vertex storage, store-at-tail vs store-at-both:\n");
  std::printf("  tail lists: %s\n", tail_summary.to_string().c_str());
  std::printf("  full lists: %s\n", full_summary.to_string().c_str());
  std::printf("\nworst-case lookup probes 2 lists of <= %zu entries "
              "(guaranteed <= %zu), vs %zu for the naive layout;\n"
              "computed in %zu MPC rounds.\n",
              static_cast<std::size_t>(tail_summary.max),
              result.outdegree_bound,
              static_cast<std::size_t>(full_summary.max),
              ledger.total_rounds());
  return 0;
}
