// Quickstart: build a graph, orient it with out-degree O(λ log log n), and
// color it with O(λ log log n) colors — the two headline operations of the
// library (Theorems 1.1 and 1.2 of the paper), plus the quality validators
// every downstream user should run.
#include <cstdio>

#include "core/coloring_mpc.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/arboricity.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "mpc/config.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"

int main() {
  using namespace arbor;

  // 1. A graph. Generators with controlled arboricity live in
  //    graph/generators.hpp; graph::read_edge_list_file loads your own.
  util::SplitRng rng(/*seed=*/42);
  const graph::Graph g = graph::forest_union(/*n=*/10000, /*k=*/4, rng);
  std::printf("graph: n=%zu m=%zu max_degree=%zu\n", g.num_vertices(),
              g.num_edges(), g.max_degree());

  // 2. Ground truth for context: exact-ish arboricity measurement.
  const graph::ArboricityBounds bounds = graph::arboricity_bounds(g);
  std::printf("arboricity in [%zu, %zu] (exact densest subgraph / "
              "degeneracy sandwich)\n",
              bounds.lower, bounds.upper);

  // 3. An MPC cluster: S = n^delta words per machine, enough machines for
  //    the input. The ledger records rounds and memory peaks.
  const mpc::ClusterConfig config =
      mpc::ClusterConfig::for_problem(g.num_vertices(), g.num_edges(),
                                      /*delta=*/0.6);
  std::printf("cluster: %zu machines x %zu words\n", config.num_machines,
              config.words_per_machine);

  // 4. Orientation (Theorem 1.1).
  {
    mpc::RoundLedger ledger(config);
    mpc::MpcContext ctx(config, &ledger);
    const core::MpcOrientationResult result = core::mpc_orient(g, {}, ctx);
    std::printf("orientation: max out-degree %zu (guaranteed <= %zu), "
                "%zu MPC rounds\n",
                result.orientation.max_outdegree(g), result.outdegree_bound,
                ledger.total_rounds());
  }

  // 5. Coloring (Theorem 1.2).
  {
    mpc::RoundLedger ledger(config);
    mpc::MpcContext ctx(config, &ledger);
    const core::MpcColoringResult result = core::mpc_color(g, {}, ctx);
    const graph::ColoringCheck check =
        graph::check_coloring(g, result.colors);
    std::printf("coloring: %zu colors from a %zu-color palette, proper=%s, "
                "%zu MPC rounds\n",
                check.colors_used, result.palette_size,
                check.proper ? "yes" : "NO", ledger.total_rounds());
  }

  return 0;
}
