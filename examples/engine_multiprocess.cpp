// Quick-start launcher for the multi-process backend (src/net/): run the
// same routing storm on the in-process serial engine and across a worker
// group — in-memory loopback channels or real arbor-worker OS processes
// over 127.0.0.1 TCP — and check the runs are bit-identical (inbox
// fingerprints, ledger round/word totals).
//
//   ./engine_multiprocess                        # loopback:2 and tcp:2
//   ./engine_multiprocess --transport tcp:4      # one specific transport
//   ./engine_multiprocess 2000 8000 12           # n, m, rounds
//   ./engine_multiprocess --report report.json   # observatory RunReport log
//
// The tcp runs exec the arbor-worker binary next to this one (override
// with ARBOR_WORKER_BIN). Exit code 0 = every backend agreed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine_storm.hpp"
#include "graph/generators.hpp"
#include "obs/report.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using arbor::mpc::ClusterConfig;
  using arbor::mpc::TransportConfig;

  const std::string report_path = arbor::bench::take_report_flag(argc, argv);
  std::vector<std::string> transports;
  std::vector<std::size_t> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transport") == 0 && i + 1 < argc)
      transports.push_back(argv[++i]);
    else
      positional.push_back(std::strtoull(argv[i], nullptr, 10));
  }
  if (transports.empty()) transports = {"loopback:2", "tcp:2"};
  const std::size_t n = positional.size() > 0 ? positional[0] : 4000;
  const std::size_t m = positional.size() > 1 ? positional[1] : 16000;
  const std::size_t rounds = positional.size() > 2 ? positional[2] : 8;

  arbor::util::SplitRng rng(7);
  const arbor::graph::Graph g = arbor::graph::gnm(n, m, rng);
  const ClusterConfig base =
      ClusterConfig::for_problem(g.num_vertices(), g.num_edges(), 0.7);
  const auto slabs = arbor::bench::edge_slabs(g, base.num_machines);
  std::printf(
      "storm: n=%zu m=%zu  cluster: M=%zu machines x S=%zu words, %zu "
      "rounds\n\n",
      g.num_vertices(), g.num_edges(), base.num_machines,
      base.words_per_machine, rounds);

  const arbor::bench::StormOutcome reference =
      arbor::bench::run_storm_program(slabs, base, rounds);
  std::printf("%-22s fp=%016llx  ledger=%zu rounds, peak %zu words, %.1f "
              "ms\n",
              "in-process serial",
              static_cast<unsigned long long>(reference.fingerprint),
              reference.ledger_rounds, reference.peak_traffic,
              reference.secs * 1e3);

  bool ok = true;
  for (const std::string& name : transports) {
    ClusterConfig cfg = base;
    try {
      cfg.transport = arbor::mpc::parse_transport_flag(name, "--transport");
      const arbor::bench::StormOutcome out =
          arbor::bench::run_storm_program(slabs, cfg, rounds);
      const bool same = out.fingerprint == reference.fingerprint &&
                        out.ledger_rounds == reference.ledger_rounds &&
                        out.peak_traffic == reference.peak_traffic;
      std::printf("%-22s fp=%016llx  ledger=%zu rounds, peak %zu words, "
                  "%.1f ms  %s\n",
                  name.c_str(),
                  static_cast<unsigned long long>(out.fingerprint),
                  out.ledger_rounds, out.peak_traffic, out.secs * 1e3,
                  same ? "== bit-identical" : "!! MISMATCH");
      ok = ok && same;
    } catch (const std::exception& e) {
      std::printf("%-22s FAILED: %s\n", name.c_str(), e.what());
      ok = false;
    }
  }
  std::printf("\n%s\n", ok ? "all backends agree" : "BACKEND DISAGREEMENT");
  if (!report_path.empty())
    arbor::obs::ReportLog::global().write_json_file(report_path);
  return ok ? 0 : 1;
}
