// Command-line tool: orient and color a user-supplied edge-list file.
//
//   edge_list_tool INPUT [--delta D] [--seed S] [--out PREFIX]
//
// INPUT format: first non-comment line "n m", then m lines "u v"
// (0-indexed). Writes PREFIX.orientation (one "u v" per line, tail first)
// and PREFIX.colors (one color per line, vertex order) when --out is
// given; always prints the quality/round summary.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/coloring_mpc.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/coloring.hpp"
#include "graph/io.hpp"
#include "mpc/config.hpp"
#include "mpc/ledger.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s INPUT [--delta D] [--seed S] [--out PREFIX]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace arbor;
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  std::string input = argv[1];
  double delta = 0.6;
  std::uint64_t seed = 1;
  std::string out_prefix;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--delta") && i + 1 < argc)
      delta = std::stod(argv[++i]);
    else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
      seed = std::stoull(argv[++i]);
    else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_prefix = argv[++i];
    else {
      usage(argv[0]);
      return 2;
    }
  }

  const graph::Graph g = graph::read_edge_list_file(input);
  std::printf("loaded %s: n=%zu m=%zu\n", input.c_str(), g.num_vertices(),
              g.num_edges());

  const mpc::ClusterConfig config =
      mpc::ClusterConfig::for_problem(g.num_vertices(), g.num_edges(), delta);

  mpc::RoundLedger orient_ledger(config);
  mpc::MpcContext orient_ctx(config, &orient_ledger);
  core::OrientationParams orient_params;
  orient_params.seed = seed;
  const auto orientation = core::mpc_orient(g, orient_params, orient_ctx);
  std::printf("orientation: max out-degree %zu (bound %zu), %zu rounds\n",
              orientation.orientation.max_outdegree(g),
              orientation.outdegree_bound, orient_ledger.total_rounds());

  mpc::RoundLedger color_ledger(config);
  mpc::MpcContext color_ctx(config, &color_ledger);
  core::ColoringParams color_params;
  color_params.seed = seed;
  const auto coloring = core::mpc_color(g, color_params, color_ctx);
  const auto check = graph::check_coloring(g, coloring.colors);
  std::printf("coloring: %zu colors (palette %zu), proper=%s, %zu rounds\n",
              check.colors_used, coloring.palette_size,
              check.proper ? "yes" : "NO", color_ledger.total_rounds());

  if (!out_prefix.empty()) {
    {
      std::ofstream out(out_prefix + ".orientation");
      const auto edges = g.edges();
      for (std::size_t i = 0; i < edges.size(); ++i) {
        if (orientation.orientation.oriented_towards_v(i))
          out << edges[i].u << ' ' << edges[i].v << '\n';
        else
          out << edges[i].v << ' ' << edges[i].u << '\n';
      }
    }
    {
      std::ofstream out(out_prefix + ".colors");
      for (graph::Color c : coloring.colors) out << c << '\n';
    }
    std::printf("wrote %s.orientation and %s.colors\n", out_prefix.c_str(),
                out_prefix.c_str());
  }
  return check.proper ? 0 : 1;
}
