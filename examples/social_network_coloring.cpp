// Scenario: coloring a social network for conflict-free batch processing.
//
// Social graphs have huge hubs (Δ grows with n) but small arboricity —
// exactly the regime the paper targets: a Δ-parameterized coloring would
// budget Δ+1 ≈ hundreds of colors, while the density-dependent algorithm
// needs only O(λ log log n). Each color class can then be processed as one
// conflict-free batch (no two adjacent users in the same batch).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/coloring_mpc.hpp"
#include "graph/arboricity.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "mpc/config.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"

int main() {
  using namespace arbor;

  // Preferential-attachment graph: a standard social-network surrogate
  // with power-law degrees (hubs) and arboricity ≈ the attachment rate.
  util::SplitRng rng(7);
  const std::size_t n = 1 << 16;
  const graph::Graph g = graph::barabasi_albert(n, /*attach=*/4, rng);

  std::printf("social graph: %zu users, %zu friendships\n", g.num_vertices(),
              g.num_edges());
  std::printf("hub degree (Delta) = %zu; degeneracy (≈ arboricity) = %zu\n",
              g.max_degree(), graph::degeneracy(g));

  const mpc::ClusterConfig config =
      mpc::ClusterConfig::for_problem(g.num_vertices(), g.num_edges(), 0.6);
  mpc::RoundLedger ledger(config);
  mpc::MpcContext ctx(config, &ledger);

  const core::MpcColoringResult result = core::mpc_color(g, {}, ctx);
  const graph::ColoringCheck check = graph::check_coloring(g, result.colors);
  std::printf("\ndensity-dependent coloring: %zu colors (palette %zu), "
              "proper=%s, %zu MPC rounds\n",
              check.colors_used, result.palette_size,
              check.proper ? "yes" : "no", ledger.total_rounds());
  std::printf("a Delta-parameterized algorithm would budget %zu colors — "
              "%.0fx more batches\n",
              g.max_degree() + 1,
              static_cast<double>(g.max_degree() + 1) /
                  static_cast<double>(std::max<std::size_t>(
                      check.colors_used, 1)));

  // Batch schedule: one pass per color, largest batches first.
  std::vector<std::size_t> batch_size;
  for (graph::Color c : result.colors) {
    if (c >= batch_size.size()) batch_size.resize(c + 1, 0);
    ++batch_size[c];
  }
  std::sort(batch_size.rbegin(), batch_size.rend());
  std::printf("\nbatch sizes (largest 8):");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, batch_size.size());
       ++i)
    std::printf(" %zu", batch_size[i]);
  std::printf("\nevery batch is conflict-free: adjacent users never share "
              "a batch.\n");
  return 0;
}
