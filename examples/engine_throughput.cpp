// Drive the parallel execution engine end to end and print what it buys.
//
// Two workloads on one generator graph:
//   1. routing storm — the shared workload from bench/engine_storm.hpp
//      (pure engine cost: send, route, deliver);
//   2. embedded threshold peeling — the LOCAL-in-MPC program from
//      src/local/mpc_embedding, a real algorithm with per-machine compute.
//
// Both run under the serial reference executor and the thread-pool engine;
// results (inbox fingerprints, peeling layers) are checked identical before
// any number is printed.
//
//   ./engine_throughput [n] [m] [rounds] [threads]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "../bench/engine_storm.hpp"
#include "graph/generators.hpp"
#include "local/mpc_embedding.hpp"
#include "mpc/cluster.hpp"
#include "util/rng.hpp"

namespace {

using arbor::bench::StormOutcome;
using arbor::mpc::Cluster;
using arbor::mpc::ClusterConfig;
using arbor::mpc::ExecutionPolicy;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (1u << 16);
  const std::size_t m = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                 : (1u << 18);
  const std::size_t rounds =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 20;
  const std::size_t threads =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10)
               : std::max(1u, std::thread::hardware_concurrency());

  std::printf("engine_throughput: n=%zu m=%zu rounds=%zu threads=%zu\n", n, m,
              rounds, threads);

  arbor::util::SplitRng rng(42);
  const arbor::graph::Graph g = arbor::graph::gnm(n, m, rng);

  // Paper-shaped cluster (S ~ n^0.7) with edge-endpoint slabs.
  ClusterConfig cfg =
      ClusterConfig::for_problem(g.num_vertices(), g.num_edges(), 0.7);
  const auto slabs = arbor::bench::edge_slabs(g, cfg.num_machines);

  std::printf("cluster: M=%zu machines, S=%zu words\n\n", cfg.num_machines,
              cfg.words_per_machine);

  // --- workload 1: routing storm ---------------------------------------
  ClusterConfig serial_cfg = cfg;
  serial_cfg.execution = ExecutionPolicy::serial();
  ClusterConfig parallel_cfg = cfg;
  parallel_cfg.execution = ExecutionPolicy::parallel(threads);

  const StormOutcome serial =
      arbor::bench::run_storm(slabs, serial_cfg, rounds);
  const StormOutcome parallel =
      arbor::bench::run_storm(slabs, parallel_cfg, rounds);

  if (serial.fingerprint != parallel.fingerprint) {
    std::fprintf(stderr, "FATAL: executors disagree on inbox state\n");
    return 1;
  }

  std::printf("routing storm (%zu rounds, identical inbox fingerprints):\n",
              rounds);
  std::printf("  serial      : %8.1f ms  %7.1f rounds/s  %7.2f Mwords/s\n",
              serial.secs * 1e3, serial.rounds / serial.secs,
              serial.words_moved / serial.secs / 1e6);
  std::printf("  parallel(%zu) : %8.1f ms  %7.1f rounds/s  %7.2f Mwords/s"
              "  (engine width %zu after hw clamp)\n",
              threads, parallel.secs * 1e3, parallel.rounds / parallel.secs,
              parallel.words_moved / parallel.secs / 1e6,
              parallel.engine_width);
  std::printf("  speedup     : %.2fx\n\n", serial.secs / parallel.secs);

  // --- workload 2: embedded threshold peeling ---------------------------
  const std::size_t peel_machines = 64;
  const ClusterConfig peel_base{peel_machines, 1 << 18};
  const std::size_t threshold =
      static_cast<std::size_t>(g.average_degree()) + 1;

  ClusterConfig peel_serial = peel_base;
  ClusterConfig peel_parallel = peel_base;
  peel_parallel.execution = ExecutionPolicy::parallel(threads);

  Cluster serial_cluster(peel_serial, nullptr);
  auto t0 = std::chrono::steady_clock::now();
  const auto peel_a = arbor::local::embedded_threshold_peeling(
      g, threshold, serial_cluster, 10000);
  const double peel_serial_secs = seconds_since(t0);

  Cluster parallel_cluster(peel_parallel, nullptr);
  t0 = std::chrono::steady_clock::now();
  const auto peel_b = arbor::local::embedded_threshold_peeling(
      g, threshold, parallel_cluster, 10000);
  const double peel_parallel_secs = seconds_since(t0);

  if (peel_a.layer != peel_b.layer) {
    std::fprintf(stderr, "FATAL: executors disagree on peeling layers\n");
    return 1;
  }

  std::printf(
      "embedded peeling (threshold=%zu, %u layers, identical results):\n",
      threshold, peel_a.num_layers);
  std::printf("  serial      : %8.1f ms  (%zu cluster rounds)\n",
              peel_serial_secs * 1e3, peel_a.cluster_rounds);
  std::printf("  parallel(%zu) : %8.1f ms\n", threads,
              peel_parallel_secs * 1e3);
  std::printf("  speedup     : %.2fx\n", peel_serial_secs / peel_parallel_secs);
  return 0;
}
